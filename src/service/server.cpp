#include "service/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.hpp"
#include "util/fault.hpp"

namespace pglb {

PlanServer::PlanServer(Planner& planner, ServiceMetrics& metrics, ServerOptions options)
    : planner_(planner),
      metrics_(metrics),
      options_(options),
      queue_(options.queue_capacity) {
  const int threads = options.threads > 0 ? options.threads : 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PlanServer::~PlanServer() { stop(); }

void PlanServer::stop() {
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void PlanServer::worker_loop() {
  while (auto job = queue_.pop()) {
    job->done.set_value(handle_line(job->line));
  }
}

std::string PlanServer::shed_response(const std::string& line) {
  metrics_.count("service.shed");
  global_registry().count("service.shed");
  // Best-effort id echo so the client can correlate the shed with its
  // request; a line too malformed to parse sheds with an empty id.
  std::string id;
  try {
    const JsonValue doc = parse_json(line);
    if (const JsonValue* value = doc.find("id"); value != nullptr && value->is_string()) {
      id = value->as_string();
    }
  } catch (const std::exception&) {
  }
  const std::size_t depth = queue_.size();
  // Suggested backoff: the backlog ahead of this client times the typical
  // (p50) end-to-end request latency.  Before any request completes there is
  // no latency signal yet, so fall back to a token 10 ms.
  const double p50 = metrics_.registry().stage_quantile_seconds("total", 0.5);
  const double per_request_ms = p50 > 0.0 ? p50 * 1000.0 : 10.0;
  const auto retry_after_ms = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(static_cast<double>(depth) * per_request_ms)));
  return serialize_overloaded(id, depth, retry_after_ms);
}

std::future<std::string> PlanServer::submit(std::string request_line) {
  Job job;
  job.line = std::move(request_line);
  std::future<std::string> result = job.done.get_future();
  if (options_.shed_when_full) {
    if (!queue_.try_push(job)) {
      std::promise<std::string> done;
      done.set_value(shed_response(job.line));
      return done.get_future();
    }
    return result;
  }
  if (!queue_.push(std::move(job))) {
    // Stopped server: answer inline instead of abandoning the promise.
    std::promise<std::string> done;
    done.set_value(serialize_error("", "server is shutting down"));
    return done.get_future();
  }
  return result;
}

std::string PlanServer::handle_line(const std::string& line) {
  PGLB_TRACE_SPAN("serve.request", "serve");
  const StageTimer total(&metrics_, "total");
  metrics_.count("requests_total");
  PlanRequest request;
  try {
    PGLB_TRACE_SPAN("serve.parse", "serve");
    const StageTimer timer(&metrics_, "parse");
    fault_point("server.parse");
    request = parse_plan_request(line);
  } catch (const std::exception& e) {
    metrics_.count("requests_failed");
    return serialize_error("", e.what());
  }

  if (request.type == RequestType::kMetrics) {
    const ProfileCacheStats cache = planner_.cache_stats();
    std::string extra = "\"cache\":{\"hits\":";
    append_json_number(extra, static_cast<double>(cache.hits));
    extra += ",\"misses\":";
    append_json_number(extra, static_cast<double>(cache.misses));
    extra += ",\"evictions\":";
    append_json_number(extra, static_cast<double>(cache.evictions));
    extra += ",\"size\":";
    append_json_number(extra, static_cast<double>(cache.size));
    extra += ",\"capacity\":";
    append_json_number(extra, static_cast<double>(cache.capacity));
    extra += ",\"hit_rate\":";
    append_json_number(extra, cache.hit_rate());
    extra += ",\"breaker_opens\":";
    append_json_number(extra, static_cast<double>(cache.breaker_opens));
    extra += ",\"breaker_rejections\":";
    append_json_number(extra, static_cast<double>(cache.breaker_rejections));
    extra += "},\"faults\":{\"enabled\":";
    append_json_number(extra, FaultRegistry::instance().enabled() ? 1.0 : 0.0);
    extra += ",\"injected\":";
    append_json_number(extra,
                       static_cast<double>(FaultRegistry::instance().injected_total()));
    extra += "},\"trace\":{\"enabled\":";
    append_json_number(extra, tracing_enabled() ? 1.0 : 0.0);
    extra += ",\"spans\":";
    append_json_number(extra,
                       static_cast<double>(Tracer::instance().spans_recorded()));
    extra += ",\"dropped\":";
    append_json_number(extra,
                       static_cast<double>(Tracer::instance().spans_dropped()));
    extra += "}";
    return metrics_.to_json(extra);
  }

  PlanResponse response;
  {
    PGLB_TRACE_SPAN("serve.plan", "serve");
    const StageTimer timer(&metrics_, "plan");
    response = planner_.plan(request);
  }
  if (!response.ok) metrics_.count("requests_failed");

  PGLB_TRACE_SPAN("serve.serialize", "serve");
  const StageTimer timer(&metrics_, "serialize");
  return serialize_response(response);
}

std::size_t PlanServer::serve_stream(std::istream& in, std::ostream& out) {
  // In-order response writer on its own thread, so a slow request at the
  // head of the line never stops the reader from keeping the workers fed.
  std::mutex mutex;
  std::condition_variable pending_cv;
  std::deque<std::future<std::string>> pending;
  bool done_reading = false;

  std::thread writer([&] {
    while (true) {
      std::future<std::string> next;
      {
        std::unique_lock<std::mutex> lock(mutex);
        pending_cv.wait(lock, [&] { return !pending.empty() || done_reading; });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      out << next.get() << '\n' << std::flush;
    }
  });

  std::size_t served = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto future = submit(std::move(line));
    {
      std::lock_guard<std::mutex> lock(mutex);
      pending.push_back(std::move(future));
    }
    pending_cv.notify_one();
    ++served;
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    done_reading = true;
  }
  pending_cv.notify_one();
  writer.join();
  return served;
}

}  // namespace pglb
