#include "service/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.hpp"
#include "service/fdio.hpp"
#include "service/wire.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"

namespace pglb {

PlanServer::PlanServer(Planner& planner, ServiceMetrics& metrics, ServerOptions options)
    : planner_(planner),
      metrics_(metrics),
      options_(options),
      delta_planner_(planner, {}, &metrics),
      queue_(options.queue_capacity) {
  const int threads = options.threads > 0 ? options.threads : 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PlanServer::~PlanServer() { stop(); }

void PlanServer::stop() {
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void PlanServer::worker_loop() {
  while (auto job = queue_.pop()) {
    std::string response = handle_line(job->line);
    if (job->done_fn) {
      job->done_fn(std::move(response));
    } else {
      job->done.set_value(std::move(response));
    }
  }
}

std::string PlanServer::shed_response(const std::string& line) {
  metrics_.count("service.shed");
  global_registry().count("service.shed");
  // Best-effort id echo so the client can correlate the shed with its
  // request; a line too malformed to parse sheds with an empty id.
  std::string id;
  try {
    const JsonValue doc = parse_json(line);
    if (const JsonValue* value = doc.find("id"); value != nullptr && value->is_string()) {
      id = value->as_string();
    }
  } catch (const std::exception&) {
  }
  const std::size_t depth = queue_.size();
  // Suggested backoff: the backlog ahead of this client times the typical
  // (p50) end-to-end request latency.  Before any request completes there is
  // no latency signal yet, so fall back to a token 10 ms.
  const double p50 = metrics_.registry().stage_quantile_seconds("total", 0.5);
  const double per_request_ms = p50 > 0.0 ? p50 * 1000.0 : 10.0;
  const auto retry_after_ms = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(static_cast<double>(depth) * per_request_ms)));
  return serialize_overloaded(id, depth, retry_after_ms);
}

std::future<std::string> PlanServer::submit(std::string request_line) {
  Job job;
  job.line = std::move(request_line);
  std::future<std::string> result = job.done.get_future();
  if (options_.shed_when_full) {
    if (!queue_.try_push(job)) {
      std::promise<std::string> done;
      done.set_value(shed_response(job.line));
      return done.get_future();
    }
    return result;
  }
  if (!queue_.push(std::move(job))) {
    // Stopped server: answer inline instead of abandoning the promise.
    std::promise<std::string> done;
    done.set_value(serialize_error("", "server is shutting down"));
    return done.get_future();
  }
  return result;
}

void PlanServer::submit(std::string request_line,
                        std::function<void(std::string)> done) {
  Job job;
  job.line = std::move(request_line);
  job.done_fn = std::move(done);
  if (options_.shed_when_full) {
    if (!queue_.try_push(job)) job.done_fn(shed_response(job.line));
    return;
  }
  if (!queue_.push(std::move(job))) {
    // push() only moves the job out on success, but be defensive about the
    // callback: a stopped server answers inline, exactly once.
    job.done_fn(serialize_error("", "server is shutting down"));
  }
}

std::string PlanServer::handle_line(const std::string& line) {
  PGLB_TRACE_SPAN("serve.request", "serve");
  const StageTimer total(&metrics_, "total");
  metrics_.count("requests_total");
  PlanRequest request;
  try {
    PGLB_TRACE_SPAN("serve.parse", "serve");
    const StageTimer timer(&metrics_, "parse");
    fault_point("server.parse");
    request = parse_plan_request(line);
  } catch (const std::exception& e) {
    metrics_.count("requests_failed");
    return serialize_error("", e.what());
  }

  if (request.type == RequestType::kDelta) {
    // Delta planning over a named mutable base graph (docs/DYNAMIC.md).  The
    // DeltaPlanner owns the whole path — batch application, incremental
    // assignment, drift-gated re-profiling — and always returns a complete
    // response line (ok-with-delta-block or a typed error).
    PGLB_TRACE_SPAN("serve.delta", "serve");
    const StageTimer timer(&metrics_, "delta");
    std::string line_out = delta_planner_.handle(request);
    if (line_out.find("\"status\":\"ok\"") == std::string::npos) {
      metrics_.count("requests_failed");
    }
    return line_out;
  }

  if (request.type == RequestType::kWarmKeys) {
    // A replica's own hottest completed profile keys, for router-driven peer
    // warming (docs/PERSIST.md).  Cheap: one cache walk, no planning.
    const std::size_t limit =
        request.limit ? static_cast<std::size_t>(*request.limit) : std::size_t{16};
    std::vector<WarmKey> keys;
    for (auto& [key, hits] : planner_.hot_keys(limit)) {
      keys.push_back(WarmKey{std::move(key), hits});
    }
    return serialize_warm_keys_response(request.id, keys);
  }

  if (request.type == RequestType::kMetrics) {
    const ProfileCacheStats cache = planner_.cache_stats();
    // Occupancy as first-class gauges so fleet probes and operators read
    // them uniformly alongside every other gauge, not only in the cache
    // block below.
    metrics_.registry().set_gauge("cache.entries", static_cast<double>(cache.size));
    metrics_.registry().set_gauge("cache.evictions",
                                  static_cast<double>(cache.evictions));
    metrics_.registry().set_gauge("cache.bytes",
                                  static_cast<double>(cache.approx_bytes));
    std::string extra = "\"cache\":{\"hits\":";
    append_json_number(extra, static_cast<double>(cache.hits));
    extra += ",\"misses\":";
    append_json_number(extra, static_cast<double>(cache.misses));
    extra += ",\"evictions\":";
    append_json_number(extra, static_cast<double>(cache.evictions));
    extra += ",\"size\":";
    append_json_number(extra, static_cast<double>(cache.size));
    extra += ",\"capacity\":";
    append_json_number(extra, static_cast<double>(cache.capacity));
    extra += ",\"hit_rate\":";
    append_json_number(extra, cache.hit_rate());
    extra += ",\"bytes\":";
    append_json_number(extra, static_cast<double>(cache.approx_bytes));
    extra += ",\"breaker_opens\":";
    append_json_number(extra, static_cast<double>(cache.breaker_opens));
    extra += ",\"breaker_rejections\":";
    append_json_number(extra, static_cast<double>(cache.breaker_rejections));
    extra += ",\"invalidations\":";
    append_json_number(extra, static_cast<double>(cache.invalidations));
    // Per-key invalidation generations (key-sorted, >0 only), so operators
    // can see WHICH profile keys drift keeps churning, not just how many.
    extra += ",\"generations\":{";
    bool first_generation = true;
    for (const auto& [key, generation] : planner_.cache_generations()) {
      if (!first_generation) extra += ',';
      first_generation = false;
      append_json_string(extra, key);
      extra += ':';
      append_json_number(extra, static_cast<double>(generation));
    }
    extra += "}},\"faults\":{\"enabled\":";
    append_json_number(extra, FaultRegistry::instance().enabled() ? 1.0 : 0.0);
    extra += ",\"injected\":";
    append_json_number(extra,
                       static_cast<double>(FaultRegistry::instance().injected_total()));
    extra += "},\"trace\":{\"enabled\":";
    append_json_number(extra, tracing_enabled() ? 1.0 : 0.0);
    extra += ",\"spans\":";
    append_json_number(extra,
                       static_cast<double>(Tracer::instance().spans_recorded()));
    extra += ",\"dropped\":";
    append_json_number(extra,
                       static_cast<double>(Tracer::instance().spans_dropped()));
    extra += "}";
    return metrics_.to_json(extra);
  }

  PlanResponse response;
  {
    PGLB_TRACE_SPAN("serve.plan", "serve");
    const StageTimer timer(&metrics_, "plan");
    response = planner_.plan(request);
  }
  if (!response.ok) metrics_.count("requests_failed");

  PGLB_TRACE_SPAN("serve.serialize", "serve");
  const StageTimer timer(&metrics_, "serialize");
  return serialize_response(response);
}

std::size_t PlanServer::serve_stream(std::istream& in, std::ostream& out) {
  // Sniff the first line: a wire hello upgrades the connection to the binary
  // framing (docs/WIRE.md); anything else replays the classic line protocol
  // byte-for-byte, first line included.
  std::string first;
  while (std::getline(in, first)) {
    if (first.empty()) continue;
    if (options_.allow_wire_upgrade && wire::is_hello_line(first)) {
      metrics_.count("wire.binary_upgrades");
      // CRC frames only when the client asked; the ack is the contract for
      // BOTH directions of this connection (docs/WIRE.md).
      const bool crc = wire::hello_wants_crc(first);
      if (crc) metrics_.count("wire.crc_upgrades");
      out << wire::hello_ack_line(crc) << '\n' << std::flush;
      return serve_frames(in, out, crc);
    }
    return serve_lines(std::move(first), in, out);
  }
  return 0;  // stream was empty (or blank lines only)
}

#ifdef __unix__
std::size_t PlanServer::serve_fd(int fd, std::ostream& out) {
  FdInStreambuf in_buf(fd, options_.handshake_timeout_ms,
                       options_.idle_timeout_ms);
  std::istream in(&in_buf);
  const std::size_t served = serve_stream(in, out);
  if (in_buf.handshake_timed_out()) {
    metrics_.count("wire.handshake_timeouts");
    global_registry().count("wire.handshake_timeouts");
  }
  if (in_buf.idle_timed_out()) {
    metrics_.count("wire.idle_reaped");
    global_registry().count("wire.idle_reaped");
  }
  return served;
}
#endif

std::size_t PlanServer::serve_lines(std::string first_line, std::istream& in,
                                    std::ostream& out) {
  // In-order response writer on its own thread, so a slow request at the
  // head of the line never stops the reader from keeping the workers fed.
  std::mutex mutex;
  std::condition_variable pending_cv;
  std::deque<std::future<std::string>> pending;
  bool done_reading = false;

  std::thread writer([&] {
    while (true) {
      std::future<std::string> next;
      {
        std::unique_lock<std::mutex> lock(mutex);
        pending_cv.wait(lock, [&] { return !pending.empty() || done_reading; });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      out << next.get() << '\n' << std::flush;
    }
  });

  std::size_t served = 0;
  std::string line = std::move(first_line);
  do {
    if (line.empty()) continue;
    auto future = submit(std::move(line));
    {
      std::lock_guard<std::mutex> lock(mutex);
      pending.push_back(std::move(future));
    }
    pending_cv.notify_one();
    ++served;
  } while (std::getline(in, line));
  {
    std::lock_guard<std::mutex> lock(mutex);
    done_reading = true;
  }
  pending_cv.notify_one();
  writer.join();
  return served;
}

std::size_t PlanServer::serve_frames(std::istream& in, std::ostream& out,
                                     bool crc) {
  // Responses leave in completion order, tagged with the request id.  The
  // writer thread swaps the whole outbox per wakeup and encodes it into one
  // buffer for a single flushed write — small responses that finish close
  // together coalesce into one syscall (the aggregation idiom, docs/WIRE.md).
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::pair<std::uint64_t, std::string>> outbox;
  std::size_t inflight = 0;
  bool done_reading = false;

  std::thread writer([&] {
    std::string batch;
    while (true) {
      std::deque<std::pair<std::uint64_t, std::string>> ready;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] {
          return !outbox.empty() || (done_reading && inflight == 0);
        });
        if (outbox.empty()) return;
        ready.swap(outbox);
      }
      batch.clear();
      for (const auto& [id, payload] : ready) {
        wire::append_frame(batch, wire::FrameType::kResponse, id, payload, crc);
      }
      out.write(batch.data(), static_cast<std::streamsize>(batch.size()));
      out.flush();
    }
  });

  std::size_t served = 0;
  char header[wire::kHeaderSize];
  while (in.read(header, static_cast<std::streamsize>(wire::kHeaderSize))) {
    std::size_t offset = 0;
    wire::Frame frame;
    std::string error;
    // A bare header never decodes to kFrame (payload bytes still unread), but
    // it fully validates magic/type/length, which is what gates reading on.
    if (wire::decode_frame(std::string_view(header, wire::kHeaderSize), &offset,
                           &frame, &error) == wire::DecodeStatus::kBad) {
      metrics_.count("wire.bad_frames");
      break;  // framing lost; nothing downstream is trustworthy
    }
    const std::uint32_t length = [&] {
      std::uint32_t value = 0;
      for (int i = 11; i >= 8; --i) {
        value = (value << 8) | static_cast<std::uint8_t>(header[i]);
      }
      return value;
    }();
    std::string payload(length, '\0');
    if (length > 0 &&
        !in.read(payload.data(), static_cast<std::streamsize>(length))) {
      break;  // torn mid-frame: peer vanished
    }
    const std::uint64_t id = [&] {
      std::uint64_t value = 0;
      for (int i = 19; i >= 12; --i) {
        value = (value << 8) | static_cast<std::uint8_t>(header[i]);
      }
      return value;
    }();
    // Honor the CRC flag per frame (not only when negotiated): the length
    // prefix keeps the stream in sync either way, so a damaged payload is
    // rejected with a typed error on THIS id and the connection lives on.
    if ((static_cast<std::uint8_t>(header[5]) & wire::kFlagCrc) != 0) {
      char trailer[wire::kCrcTrailerSize];
      if (!in.read(trailer, static_cast<std::streamsize>(sizeof trailer))) {
        break;  // torn mid-trailer: peer vanished
      }
      std::uint32_t stated = 0;
      for (int i = 3; i >= 0; --i) {
        stated = (stated << 8) | static_cast<std::uint8_t>(trailer[i]);
      }
      if (stated != crc32_ieee(payload)) {
        metrics_.count("wire.crc_rejected");
        global_registry().count("wire.crc_rejected");
        std::lock_guard<std::mutex> lock(mutex);
        outbox.emplace_back(id,
                            serialize_error("", "frame payload failed crc check"));
        cv.notify_all();
        ++served;
        continue;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (options_.max_inflight_frames > 0 &&
          inflight >= options_.max_inflight_frames) {
        // Typed pushback, same shape as queue shedding: the peer learns the
        // depth and a retry hint instead of silently waiting in line.
        metrics_.count("wire.inflight_shed");
        global_registry().count("wire.inflight_shed");
        outbox.emplace_back(id, shed_response(payload));
        cv.notify_all();
        ++served;
        continue;
      }
      ++inflight;
    }
    // Note: notified under the lock so the writer cannot observe "drained and
    // done" and exit between this callback's unlock and its notify.
    submit(std::move(payload), [&, id](std::string response) {
      std::lock_guard<std::mutex> lock(mutex);
      outbox.emplace_back(id, std::move(response));
      --inflight;
      cv.notify_all();
    });
    ++served;
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    done_reading = true;
    cv.notify_all();
  }
  writer.join();
  return served;
}

}  // namespace pglb
