#pragma once
// The planning service's brain: one thread-safe API over the whole
// proxy-guided pipeline.  A request names a cluster (catalog machine names),
// an application, and the input graph's statistics; the planner answers with
// per-machine CCR weights, a recommended partitioner, and predicted
// makespan / replication / energy / cost — without ever seeing the graph,
// exactly the property that makes the paper's method deployable as a
// service.
//
// The expensive stage (synthetic-proxy profiling, Sec. III-B) is memoized in
// an LRU cache keyed on (machine-class set, app, proxy alpha); repeated
// requests over known machine classes reduce to arithmetic.  All derived
// numbers are computed from the cached ProfileEntry alone, so a cached plan
// is byte-identical to a freshly profiled one.

#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/proxy_suite.hpp"
#include "core/time_database.hpp"
#include "service/metrics.hpp"
#include "service/profile_cache.hpp"
#include "service/protocol.hpp"
#include "util/thread_pool.hpp"

namespace pglb {

class Cluster;

struct PlannerOptions {
  /// Proxy down-scaling factor (trait re-inflation keeps predictions at
  /// paper scale; smaller = cheaper profiling on a miss).
  double proxy_scale = 1.0 / 256.0;
  std::uint64_t proxy_seed = 17;
  std::size_t cache_capacity = 64;
  /// Worker threads for proxy generation and profiling fan-out.  0 shares the
  /// process-wide pool (PGLB_THREADS env, default hardware concurrency); > 0
  /// gives this planner its own pool of that size.  Responses are
  /// bit-identical at any setting.
  unsigned threads = 0;
  /// Deadline applied to requests that carry no timeout_ms of their own.
  /// 0 = no deadline (docs/ROBUSTNESS.md).
  std::uint64_t default_timeout_ms = 0;
  /// Per-profile-key circuit breaker configuration (threshold, cooldown,
  /// injectable clock) — forwarded to the profile cache.
  BreakerOptions breaker;
};

class Planner {
 public:
  explicit Planner(PlannerOptions options = {}, ServiceMetrics* metrics = nullptr);

  /// Serve one request.  Request-level problems (unknown machine name, ...)
  /// come back as error responses; this never throws for bad requests.
  /// Thread-safe; concurrent calls that miss on the same profile key block
  /// on a single profiling run (single-flight).
  ///
  /// Resilience semantics (docs/ROBUSTNESS.md):
  ///  - the request's timeout_ms (or options.default_timeout_ms) arms a
  ///    cooperative deadline; expiry yields a typed "timeout" response;
  ///  - a profiling failure, injected fault, or open circuit breaker yields a
  ///    DEGRADED ok-response: thread-count heuristic weights (bit-identical
  ///    to the ThreadCountEstimator baseline) stamped degraded="thread_count"
  ///    (or "uniform" if even the heuristic fails).
  PlanResponse plan(const PlanRequest& request);

  /// Stable cache key a request resolves to: "class+class|app|alpha" with
  /// machine classes sorted and deduplicated and the proxy alpha in
  /// canonical_alpha() form.  Exposed for tests and cache diagnostics.
  std::string profile_key(const PlanRequest& request);

  ProfileCacheStats cache_stats() const { return cache_.stats(); }
  const PlannerOptions& options() const noexcept { return options_; }

  /// Explicitly evict one profile key (delta-driven staleness; the next plan
  /// over the key re-profiles).  Counts cache.invalidations when an entry was
  /// actually removed.  Returns ProfileCache::invalidate's result.
  bool invalidate_profile(const std::string& key);

  /// Per-key invalidation generations, key-sorted (metrics payload).
  std::vector<std::pair<std::string, std::uint64_t>> cache_generations() const {
    return cache_.generations();
  }

  // --- durable warm state (docs/PERSIST.md) --------------------------------

  /// Completed cache entries in recency order — what a snapshot serializes.
  std::vector<ProfileCache::ExportedEntry> export_cache() const {
    return cache_.export_entries();
  }

  /// Re-insert a restored entry (no eviction, no hit/miss accounting).
  /// Restored entries feed the SAME deterministic arithmetic as fresh
  /// profiles, so a restored plan is byte-identical to a fresh one.
  bool import_cache_entry(const std::string& key, ProfileCache::EntryPtr entry,
                          std::uint64_t hits) {
    return cache_.import_entry(key, std::move(entry), hits);
  }

  /// The `limit` hottest cache keys with hit counts (warm_keys responses).
  std::vector<std::pair<std::string, std::uint64_t>> hot_keys(std::size_t limit) const {
    return cache_.hot_keys(limit);
  }

  /// Copy of the planner's time database — every profiled (app, proxy alpha,
  /// machine class) runtime observed by this process, the durable CCR pool
  /// the snapshot carries alongside the cache.
  TimeDatabase time_database() const;

  /// Merge a restored time database under live entries (TimeDatabase::merge).
  void merge_time_database(const TimeDatabase& restored);

  /// The pool this planner fans work out on (its own, or the global one).
  /// Shared with every pipeline stage the planner drives.
  ThreadPool& thread_pool() noexcept { return pool_or_global(owned_pool_.get()); }

 private:
  /// Resolve the proxy that covers `alpha` (generating one on demand) and
  /// return its alpha.  Guarded by suite_mutex_.
  double resolve_proxy_alpha(double alpha, const CancelToken* cancel = nullptr);

  /// The request's alpha: given directly, or fitted from (V, E).  The Newton
  /// solve behind fit_alpha_clamped costs O(support) per iteration, so fitted
  /// values are memoized per (V, E) — it would otherwise dominate the
  /// warm-cache path.
  double request_alpha(const PlanRequest& request);

  ProfileCache::EntryPtr profile(const std::vector<std::string>& classes, AppKind app,
                                 double proxy_alpha, const std::string& key,
                                 const CancelToken* cancel = nullptr);

  /// Fallback plan when profiling is unavailable (failure, fault, breaker
  /// open): thread-count weights, or uniform if even those fail.
  PlanResponse degraded_plan(const PlanRequest& request, const Cluster& cluster,
                             double alpha, double proxy_alpha);

  PlannerOptions options_;
  ServiceMetrics* metrics_;

  /// Present only when options_.threads > 0; declared before suite_ so proxy
  /// generation can already fan out over it during construction.
  std::unique_ptr<ThreadPool> owned_pool_;

  std::mutex suite_mutex_;  ///< guards suite_ (ensure_coverage mutates it)
  ProxySuite suite_;

  std::mutex alpha_mutex_;  ///< guards alpha_memo_
  std::unordered_map<std::string, double> alpha_memo_;

  mutable std::mutex time_db_mutex_;  ///< guards time_db_
  TimeDatabase time_db_;

  ProfileCache cache_;
};

}  // namespace pglb
