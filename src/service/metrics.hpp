#pragma once
// Service metrics registry: named counters plus per-stage latency histograms,
// dumpable on demand as deterministic JSON (sorted names, fixed key order).
//
// Latencies are recorded into geometric buckets (8 per octave, ~9% relative
// resolution) layered over util/histogram's ExactHistogram — bucket indices
// are small integers, so the exact histogram machinery applies unchanged
// while a 1 us .. 1000 s range needs only ~240 buckets.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/histogram.hpp"
#include "util/stopwatch.hpp"

namespace pglb {

class LatencyHistogram {
 public:
  void record_seconds(double seconds);

  std::uint64_t count() const noexcept { return buckets_.total(); }

  /// Latency at quantile q in [0, 1], as the representative (geometric lower
  /// bound) of the bucket containing it.  0 when empty.
  double quantile_seconds(double q) const;

  const ExactHistogram& buckets() const noexcept { return buckets_; }

  /// Bucket mapping, exposed for tests: microseconds -> index and back.
  static std::uint64_t bucket_of(double microseconds);
  static double bucket_floor_us(std::uint64_t bucket);

 private:
  ExactHistogram buckets_;  ///< value = geometric bucket index
};

class ServiceMetrics {
 public:
  /// Add `delta` to counter `name` (created on first use).
  void count(std::string_view name, std::uint64_t delta = 1);

  /// Record one latency observation for stage `stage`.
  void observe(std::string_view stage, double seconds);

  std::uint64_t counter(std::string_view name) const;

  /// Snapshot as one-line JSON:
  ///   {"counters":{...},"stages":{"plan":{"count":N,"p50_us":...,...}}}
  /// Extra top-level fields (e.g. cache stats) can be injected by the caller
  /// via `extra`, a pre-serialized JSON fragment like "\"cache\":{...}".
  std::string to_json(const std::string& extra = "") const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, LatencyHistogram, std::less<>> stages_;
};

/// RAII stage timer: records the elapsed host time into `metrics` when it
/// goes out of scope (no-op when metrics is null).
class StageTimer {
 public:
  StageTimer(ServiceMetrics* metrics, std::string_view stage);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  ServiceMetrics* metrics_;
  std::string stage_;
  Stopwatch watch_;
};

}  // namespace pglb
