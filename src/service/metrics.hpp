#pragma once
// Service-facing metrics facade: a thin client of the process-wide
// observability registry (obs/registry.hpp).  Each ServiceMetrics owns its
// own Registry so two servers in one process (tests, the load generator's
// in-process mode) stay isolated; the counter/stage machinery, latency
// bucketing, and deterministic JSON snapshot all live in obs.

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace pglb {

class ServiceMetrics {
 public:
  /// Add `delta` to counter `name` (created on first use).
  void count(std::string_view name, std::uint64_t delta = 1) {
    registry_.count(name, delta);
  }

  /// Record one latency observation for stage `stage`.
  void observe(std::string_view stage, double seconds) {
    registry_.observe(stage, seconds);
  }

  std::uint64_t counter(std::string_view name) const { return registry_.counter(name); }

  /// Snapshot as one-line JSON with deterministic key ordering:
  ///   {"counters":{...},"gauges":{...},"stages":{...}}
  /// `extra` injects pre-serialized top-level fields (e.g. cache stats);
  /// `include_buckets` adds the full per-stage latency distributions.
  std::string to_json(const std::string& extra = "",
                      bool include_buckets = false) const {
    return registry_.to_json(extra, include_buckets);
  }

  /// The underlying registry, for callers that need gauges or raw snapshots.
  Registry& registry() noexcept { return registry_; }
  const Registry& registry() const noexcept { return registry_; }

 private:
  Registry registry_;
};

/// RAII stage timer over a ServiceMetrics (no-op when metrics is null).
class StageTimer {
 public:
  StageTimer(ServiceMetrics* metrics, std::string_view stage)
      : timer_(metrics != nullptr ? &metrics->registry() : nullptr, stage) {}

 private:
  ScopedTimer timer_;
};

}  // namespace pglb
