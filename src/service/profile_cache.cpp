#include "service/profile_cache.hpp"

#include <stdexcept>

namespace pglb {

ProfileCache::ProfileCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ProfileCache: capacity must be positive");
  }
}

ProfileCache::EntryPtr ProfileCache::get(const std::string& key,
                                         const std::function<EntryPtr()>& compute) {
  std::shared_future<EntryPtr> future;
  std::promise<EntryPtr> promise;
  std::uint64_t my_slot_id = 0;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      future = it->second->future;
    } else {
      ++misses_;
      owner = true;
      my_slot_id = next_slot_id_++;
      future = promise.get_future().share();
      lru_.push_front(Slot{key, my_slot_id, future});
      index_[key] = lru_.begin();
      if (lru_.size() > capacity_) {
        // Evict the least recently used slot.  A still-computing victim stays
        // alive through its shared_future; it just loses cache residency.
        const auto victim = std::prev(lru_.end());
        index_.erase(victim->key);
        lru_.erase(victim);
        ++evictions_;
      }
    }
  }

  if (!owner) return future.get();  // blocks if the owner is still profiling

  try {
    promise.set_value(compute());
  } catch (...) {
    promise.set_exception(std::current_exception());
    // Un-cache the failed computation so a later request retries; the slot id
    // guards against erasing a fresh slot that replaced ours after eviction.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end() && it->second->id == my_slot_id) {
      lru_.erase(it->second);
      index_.erase(it);
    }
  }
  return future.get();
}

ProfileCacheStats ProfileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ProfileCacheStats{hits_, misses_, evictions_, lru_.size(), capacity_};
}

void ProfileCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace pglb
