#include "service/profile_cache.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/fault.hpp"

namespace pglb {

ProfileCache::ProfileCache(std::size_t capacity, BreakerOptions breaker)
    : capacity_(capacity), breaker_options_(std::move(breaker)) {
  if (capacity == 0) {
    throw std::invalid_argument("ProfileCache: capacity must be positive");
  }
  if (breaker_options_.failure_threshold <= 0) {
    throw std::invalid_argument("ProfileCache: failure_threshold must be positive");
  }
}

std::uint64_t ProfileCache::now_ms() const {
  if (breaker_options_.clock_ms) return breaker_options_.clock_ms();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ProfileCache::admit_or_reject(const std::string& key) {
  const auto it = breakers_.find(key);
  if (it == breakers_.end() || !it->second.open) return;
  Breaker& breaker = it->second;
  const std::uint64_t elapsed = now_ms() - breaker.opened_at_ms;
  if (elapsed < breaker_options_.cooldown_ms) {
    ++breaker_rejections_;
    throw BreakerOpenError(key, breaker_options_.cooldown_ms - elapsed);
  }
  // Cooldown over: half-open.  Admit exactly one trial; concurrent callers
  // are still shed until the trial resolves.
  if (breaker.trial_in_flight) {
    ++breaker_rejections_;
    throw BreakerOpenError(key, 1);
  }
  breaker.trial_in_flight = true;
}

void ProfileCache::record_outcome(const std::string& key, bool success) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (success) {
    breakers_.erase(key);  // fresh start: closed, zero failures
    return;
  }
  Breaker& breaker = breakers_[key];
  ++breaker.consecutive_failures;
  breaker.trial_in_flight = false;
  const bool should_open =
      breaker.open ||  // a failed half-open trial re-opens immediately
      breaker.consecutive_failures >= breaker_options_.failure_threshold;
  if (should_open) {
    breaker.open = true;
    breaker.opened_at_ms = now_ms();
    ++breaker_opens_;
  }
}

ProfileCache::EntryPtr ProfileCache::get(const std::string& key,
                                         const std::function<EntryPtr()>& compute,
                                         const CancelToken* cancel) {
  std::shared_future<EntryPtr> future;
  std::promise<EntryPtr> promise;
  std::uint64_t my_slot_id = 0;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      future = it->second->future;
    } else {
      admit_or_reject(key);  // may throw BreakerOpenError
      ++misses_;
      owner = true;
      my_slot_id = next_slot_id_++;
      future = promise.get_future().share();
      lru_.push_front(Slot{key, my_slot_id, future});
      index_[key] = lru_.begin();
      if (lru_.size() > capacity_) {
        // Evict the least recently used slot.  A still-computing victim stays
        // alive through its shared_future; it just loses cache residency.
        const auto victim = std::prev(lru_.end());
        index_.erase(victim->key);
        lru_.erase(victim);
        ++evictions_;
      }
    }
  }

  if (!owner) {
    if (cancel == nullptr) return future.get();  // blocks while owner profiles
    // Deadline-aware wait: poll the token so a wedged owner cannot drag this
    // request past its deadline.  The owner keeps computing; only the wait is
    // abandoned.
    while (true) {
      cancel->check("cache.wait");
      const double remaining = cancel->deadline().remaining_seconds();
      const auto slice = std::chrono::duration<double>(
          std::clamp(remaining, 0.0005, 0.005));
      if (future.wait_for(slice) == std::future_status::ready) return future.get();
    }
  }

  try {
    EntryPtr value = compute();
    fault_point("cache.insert");
    promise.set_value(std::move(value));
    record_outcome(key, true);
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      // Un-cache the failed computation so a later request retries; the slot
      // id guards against erasing a fresh slot that replaced ours after
      // eviction.
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = index_.find(key);
      if (it != index_.end() && it->second->id == my_slot_id) {
        lru_.erase(it->second);
        index_.erase(it);
      }
    }
    record_outcome(key, false);
  }
  return future.get();
}

ProfileCacheStats ProfileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ProfileCacheStats{hits_,          misses_,
                           evictions_,     breaker_opens_,
                           breaker_rejections_, lru_.size(),
                           capacity_};
}

BreakerState ProfileCache::breaker_state(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = breakers_.find(key);
  if (it == breakers_.end() || !it->second.open) return BreakerState::kClosed;
  const std::uint64_t elapsed = now_ms() - it->second.opened_at_ms;
  return elapsed >= breaker_options_.cooldown_ms ? BreakerState::kHalfOpen
                                                 : BreakerState::kOpen;
}

void ProfileCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  breakers_.clear();
}

}  // namespace pglb
