#include "service/profile_cache.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/fault.hpp"

namespace pglb {

ProfileCache::ProfileCache(std::size_t capacity, BreakerOptions breaker)
    : capacity_(capacity), breaker_options_(std::move(breaker)) {
  if (capacity == 0) {
    throw std::invalid_argument("ProfileCache: capacity must be positive");
  }
  if (breaker_options_.failure_threshold <= 0) {
    throw std::invalid_argument("ProfileCache: failure_threshold must be positive");
  }
}

std::uint64_t ProfileCache::now_ms() const {
  if (breaker_options_.clock_ms) return breaker_options_.clock_ms();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ProfileCache::admit_or_reject(const std::string& key) {
  const auto it = breakers_.find(key);
  if (it == breakers_.end() || !it->second.open) return;
  Breaker& breaker = it->second;
  const std::uint64_t elapsed = now_ms() - breaker.opened_at_ms;
  if (elapsed < breaker_options_.cooldown_ms) {
    ++breaker_rejections_;
    throw BreakerOpenError(key, breaker_options_.cooldown_ms - elapsed);
  }
  // Cooldown over: half-open.  Admit exactly one trial; concurrent callers
  // are still shed until the trial resolves.
  if (breaker.trial_in_flight) {
    ++breaker_rejections_;
    throw BreakerOpenError(key, 1);
  }
  breaker.trial_in_flight = true;
}

void ProfileCache::record_outcome(const std::string& key, bool success) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (success) {
    breakers_.erase(key);  // fresh start: closed, zero failures
    return;
  }
  Breaker& breaker = breakers_[key];
  ++breaker.consecutive_failures;
  breaker.trial_in_flight = false;
  const bool should_open =
      breaker.open ||  // a failed half-open trial re-opens immediately
      breaker.consecutive_failures >= breaker_options_.failure_threshold;
  if (should_open) {
    breaker.open = true;
    breaker.opened_at_ms = now_ms();
    ++breaker_opens_;
  }
}

ProfileCache::EntryPtr ProfileCache::get(const std::string& key,
                                         const std::function<EntryPtr()>& compute,
                                         const CancelToken* cancel) {
  std::shared_future<EntryPtr> future;
  std::promise<EntryPtr> promise;
  std::uint64_t my_slot_id = 0;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      ++it->second->hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      future = it->second->future;
    } else {
      admit_or_reject(key);  // may throw BreakerOpenError
      ++misses_;
      owner = true;
      my_slot_id = next_slot_id_++;
      future = promise.get_future().share();
      lru_.push_front(Slot{key, my_slot_id, 0, future});
      index_[key] = lru_.begin();
      if (lru_.size() > capacity_) {
        // Evict the least recently used slot.  A still-computing victim stays
        // alive through its shared_future; it just loses cache residency.
        const auto victim = std::prev(lru_.end());
        index_.erase(victim->key);
        lru_.erase(victim);
        ++evictions_;
      }
    }
  }

  if (!owner) {
    if (cancel == nullptr) return future.get();  // blocks while owner profiles
    // Deadline-aware wait: poll the token so a wedged owner cannot drag this
    // request past its deadline.  The owner keeps computing; only the wait is
    // abandoned.
    while (true) {
      cancel->check("cache.wait");
      const double remaining = cancel->deadline().remaining_seconds();
      const auto slice = std::chrono::duration<double>(
          std::clamp(remaining, 0.0005, 0.005));
      if (future.wait_for(slice) == std::future_status::ready) return future.get();
    }
  }

  try {
    EntryPtr value = compute();
    fault_point("cache.insert");
    promise.set_value(std::move(value));
    record_outcome(key, true);
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      // Un-cache the failed computation so a later request retries; the slot
      // id guards against erasing a fresh slot that replaced ours after
      // eviction.
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = index_.find(key);
      if (it != index_.end() && it->second->id == my_slot_id) {
        lru_.erase(it->second);
        index_.erase(it);
      }
    }
    record_outcome(key, false);
  }
  return future.get();
}

namespace {

/// Whether `future` already resolved to a value (not an exception) — the
/// only entries snapshots and occupancy accounting look at.  Never blocks.
ProfileCache::EntryPtr completed_entry(
    const std::shared_future<ProfileCache::EntryPtr>& future) {
  if (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    return nullptr;
  }
  try {
    return future.get();
  } catch (...) {
    return nullptr;  // failed computation still being unwound by its owner
  }
}

std::size_t approx_entry_bytes(const std::string& key, const ProfileEntry& entry) {
  std::size_t bytes = key.size() + sizeof(ProfileEntry);
  for (const auto& [name, _] : entry.class_times) {
    bytes += name.size() + sizeof(std::pair<std::string, double>);
  }
  bytes += entry.proxy_total_degree.counts().size() * sizeof(std::uint64_t);
  return bytes;
}

}  // namespace

ProfileCacheStats ProfileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t approx_bytes = 0;
  for (const Slot& slot : lru_) {
    if (const EntryPtr entry = completed_entry(slot.future)) {
      approx_bytes += approx_entry_bytes(slot.key, *entry);
    }
  }
  return ProfileCacheStats{hits_,          misses_,
                           evictions_,     invalidations_,
                           breaker_opens_, breaker_rejections_,
                           lru_.size(),    capacity_,
                           approx_bytes};
}

bool ProfileCache::invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.erase(it->second);
  index_.erase(it);
  ++invalidations_;
  ++generations_[key];
  return true;
}

std::uint64_t ProfileCache::generation(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = generations_.find(key);
  return it != generations_.end() ? it->second : 0;
}

std::vector<std::pair<std::string, std::uint64_t>> ProfileCache::generations() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.assign(generations_.begin(), generations_.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

BreakerState ProfileCache::breaker_state(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = breakers_.find(key);
  if (it == breakers_.end() || !it->second.open) return BreakerState::kClosed;
  const std::uint64_t elapsed = now_ms() - it->second.opened_at_ms;
  return elapsed >= breaker_options_.cooldown_ms ? BreakerState::kHalfOpen
                                                 : BreakerState::kOpen;
}

void ProfileCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  breakers_.clear();
}

std::vector<ProfileCache::ExportedEntry> ProfileCache::export_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ExportedEntry> out;
  out.reserve(lru_.size());
  for (const Slot& slot : lru_) {  // front = MRU, preserved by import order
    if (EntryPtr entry = completed_entry(slot.future)) {
      out.push_back(ExportedEntry{slot.key, slot.hits, std::move(entry)});
    }
  }
  return out;
}

bool ProfileCache::import_entry(const std::string& key, EntryPtr entry,
                                std::uint64_t hits) {
  if (entry == nullptr) return false;
  std::promise<EntryPtr> promise;
  promise.set_value(std::move(entry));
  std::lock_guard<std::mutex> lock(mutex_);
  if (lru_.size() >= capacity_ || index_.count(key) != 0) return false;
  lru_.push_back(Slot{key, next_slot_id_++, hits, promise.get_future().share()});
  index_[key] = std::prev(lru_.end());
  return true;
}

std::vector<std::pair<std::string, std::uint64_t>> ProfileCache::hot_keys(
    std::size_t limit) const {
  std::vector<std::pair<std::string, std::uint64_t>> keys;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    keys.reserve(lru_.size());
    for (const Slot& slot : lru_) {
      if (completed_entry(slot.future) != nullptr) {
        keys.emplace_back(slot.key, slot.hits);
      }
    }
  }
  // Traversal order is MRU-first; a stable sort on hits keeps recency as the
  // tie-break, so the report is deterministic for a given cache state.
  std::stable_sort(keys.begin(), keys.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (keys.size() > limit) keys.resize(limit);
  return keys;
}

}  // namespace pglb
