#pragma once
// Concurrent front-end of the planning service: a bounded work queue feeding
// a worker-thread pool.  Each worker parses a request line, plans it, and
// serializes the response; per-request results are deterministic regardless
// of scheduling because the Planner derives every number from the immutable
// cached ProfileEntry.
//
// Backpressure: submit() blocks while the queue is at capacity, so a fast
// producer cannot grow memory without bound — the service degrades to the
// planner's throughput instead of falling over.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/delta_planner.hpp"
#include "service/metrics.hpp"
#include "service/planner.hpp"

namespace pglb {

/// Blocking MPMC queue with a hard capacity bound.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks while full.  Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed (`item` is left intact so
  /// the caller can shed it with a typed response instead of dropping it).
  bool try_push(T& item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty.  Empty optional = closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Wake every waiter; pushes fail from now on, pops drain the backlog.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Items currently queued (a snapshot; exact only for the caller's own
  /// reasoning, e.g. the shed response's queue_depth field).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

struct ServerOptions {
  int threads = 4;
  std::size_t queue_capacity = 256;
  /// Admission control (docs/ROBUSTNESS.md): when true, submit() sheds
  /// instead of blocking once the queue is at capacity — the caller gets an
  /// immediate "overloaded" response carrying the observed queue depth and a
  /// suggested retry-after.  Default keeps the original backpressure.
  bool shed_when_full = false;
  /// When false, serve_stream never upgrades to the binary framing: a hello
  /// line is handled as an ordinary request and earns the usual typed
  /// parse-error response, exactly like a pre-wire server — which is the
  /// signal a kAuto client reads as "fall back to line-JSON" (docs/WIRE.md).
  bool allow_wire_upgrade = true;
  /// Slow-loris defense for serve_fd (docs/CHAOS.md): a connection whose
  /// first byte does not arrive within this deadline is closed and counted
  /// as wire.handshake_timeouts.  0 = wait forever (the istream overloads of
  /// serve_stream always wait forever; deadlines need the fd).
  std::uint64_t handshake_timeout_ms = 0;
  /// Idle reaper for serve_fd: an established connection that goes this long
  /// without sending a byte is closed and counted as wire.idle_reaped.
  /// 0 = never reap.
  std::uint64_t idle_timeout_ms = 0;
  /// Per-connection cap on frames in flight in serve_frames.  A peer that
  /// pipelines past the cap gets typed "overloaded" pushback per excess
  /// frame (wire.inflight_shed) instead of monopolizing the worker queue.
  /// 0 = unbounded (the pre-hardening behavior).
  std::size_t max_inflight_frames = 0;
};

class PlanServer {
 public:
  /// The planner and metrics must outlive the server.
  PlanServer(Planner& planner, ServiceMetrics& metrics, ServerOptions options = {});
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Enqueue one raw request line; the future yields the response line.
  /// Blocks while the queue is at capacity (or sheds with an "overloaded"
  /// response when options.shed_when_full).  Never throws into the future:
  /// malformed input yields a serialized error response.
  std::future<std::string> submit(std::string request_line);

  /// Callback flavour for transports that complete out of order (the binary
  /// wire path, docs/WIRE.md): `done` runs exactly once with the response —
  /// on a worker thread normally, inline on the caller when the request is
  /// shed or the server is stopped.  `done` must not block for long; the
  /// frame writer only enqueues.
  void submit(std::string request_line, std::function<void(std::string)> done);

  /// Pump a whole stream.  A first line of `{"hello":...}` (wire::is_hello_line)
  /// upgrades the connection to the multiplexed binary framing — responses go
  /// out as id-tagged frames the moment they finish, in completion order,
  /// coalesced into batched writes.  Any other first byte stays on the line
  /// protocol byte-for-byte: one request per input line, one response per
  /// output line, in input order.  Returns the number of requests served.
  std::size_t serve_stream(std::istream& in, std::ostream& out);

#ifdef __unix__
  /// serve_stream over a connected socket fd, with the handshake/idle
  /// deadlines from ServerOptions enforced via poll() (service/fdio.hpp).
  /// Does not close `fd`; responses go to `out` as usual.  A deadline expiry
  /// reads as EOF to the serving loop and is counted as
  /// wire.handshake_timeouts or wire.idle_reaped.
  std::size_t serve_fd(int fd, std::ostream& out);
#endif

  /// Close the queue and join the workers (idempotent; the destructor calls
  /// it).  Pending jobs are drained before the workers exit.
  void stop();

  /// The delta-planning subsystem behind this server's `delta` requests
  /// (docs/DYNAMIC.md).  Exposed so snapshots can persist/restore its base
  /// registry (docs/PERSIST.md) and tests can inspect it directly.
  dynamic::DeltaPlanner& delta_planner() noexcept { return delta_planner_; }

 private:
  struct Job {
    std::string line;
    std::promise<std::string> done;
    /// When set, the worker calls this instead of fulfilling the promise.
    std::function<void(std::string)> done_fn;
  };

  void worker_loop();
  std::string handle_line(const std::string& line);
  std::string shed_response(const std::string& line);
  /// The classic line loop, seeded with the already-read first line.
  std::size_t serve_lines(std::string first_line, std::istream& in,
                          std::ostream& out);
  /// The post-handshake binary loop: frames in, frames out, out of order.
  /// `crc` mirrors the negotiated hello: responses carry CRC trailers.
  std::size_t serve_frames(std::istream& in, std::ostream& out, bool crc);

  Planner& planner_;
  ServiceMetrics& metrics_;
  ServerOptions options_;
  dynamic::DeltaPlanner delta_planner_;
  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace pglb
