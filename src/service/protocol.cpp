#include "service/protocol.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <span>

namespace pglb {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

// --- parser ----------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ProtocolError("JSON parse error at byte " + std::to_string(pos_) + ": " +
                        message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default: return JsonValue(parse_number());
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(object));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = peek();
      ++pos_;
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned read_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    pos_ += 4;
    return code;
  }

  std::string parse_unicode_escape() {
    const unsigned code = read_hex4();
    std::uint32_t point = code;
    if (code >= 0xDC00 && code <= 0xDFFF) fail("lone low surrogate \\u escape");
    if (code >= 0xD800 && code <= 0xDBFF) {
      // RFC 8259 surrogate pair: a high surrogate must be chased by an
      // escaped low surrogate; together they name one non-BMP code point.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("high surrogate not followed by \\u low surrogate");
      }
      pos_ += 2;
      const unsigned low = read_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate in \\u pair");
      point = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }
    std::string out;
    if (point < 0x80) {
      out.push_back(static_cast<char>(point));
    } else if (point < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (point >> 6)));
      out.push_back(static_cast<char>(0x80 | (point & 0x3F)));
    } else if (point < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (point >> 12)));
      out.push_back(static_cast<char>(0x80 | ((point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (point & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (point >> 18)));
      out.push_back(static_cast<char>(0x80 | ((point >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (point & 0x3F)));
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_ || start == pos_) {
      pos_ = start;
      fail("invalid number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

// append_json_string / append_json_number live in util/json.cpp — the
// protocol shares one escaper and one number formatter with every other
// JSON-emitting subsystem (metrics registry, Chrome-trace exporter).

// --- request ---------------------------------------------------------------

namespace {

double require_number(const JsonValue& value, const char* key) {
  if (!value.is_number()) {
    throw ProtocolError(std::string("field '") + key + "' must be a number");
  }
  return value.as_number();
}

std::uint64_t require_count(const JsonValue& value, const char* key) {
  const double n = require_number(value, key);
  if (n < 0.0 || n != std::floor(n)) {
    throw ProtocolError(std::string("field '") + key +
                        "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

const std::string& require_string(const JsonValue& value, const char* key) {
  if (!value.is_string()) {
    throw ProtocolError(std::string("field '") + key + "' must be a string");
  }
  return value.as_string();
}

VertexId require_vertex(const JsonValue& value, const char* key) {
  const std::uint64_t n = require_count(value, key);
  if (n >= kInvalidVertex) {
    throw ProtocolError(std::string("field '") + key + "' is out of vertex-id range");
  }
  return static_cast<VertexId>(n);
}

dynamic::Mutation parse_mutation(const JsonValue& item) {
  if (!item.is_object()) throw ProtocolError("mutations[] entries must be objects");
  dynamic::Mutation m;
  bool saw_op = false, saw_src = false, saw_dst = false, saw_id = false;
  for (const auto& [key, value] : item.as_object()) {
    if (key == "op") {
      const auto op = dynamic::mutation_op_from_string(require_string(value, "op"));
      if (!op) throw ProtocolError("unknown mutation op '" + value.as_string() + "'");
      m.op = *op;
      saw_op = true;
    } else if (key == "src") {
      m.src = require_vertex(value, "src");
      saw_src = true;
    } else if (key == "dst") {
      m.dst = require_vertex(value, "dst");
      saw_dst = true;
    } else if (key == "id") {
      m.src = require_vertex(value, "id");
      saw_id = true;
    } else {
      throw ProtocolError("unknown mutation field '" + key + "'");
    }
  }
  if (!saw_op) throw ProtocolError("mutation missing 'op'");
  const bool edge_op = m.op == dynamic::MutationOp::kAddEdge ||
                       m.op == dynamic::MutationOp::kRemoveEdge;
  if (edge_op && (!saw_src || !saw_dst || saw_id)) {
    throw ProtocolError(std::string("mutation op '") + dynamic::to_string(m.op) +
                        "' requires 'src' and 'dst' (and no 'id')");
  }
  if (!edge_op && (!saw_id || saw_src || saw_dst)) {
    throw ProtocolError(std::string("mutation op '") + dynamic::to_string(m.op) +
                        "' requires 'id' (and no 'src'/'dst')");
  }
  return m;
}

void append_double_array(std::string& out, std::span<const double> values) {
  out.push_back('[');
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_number(out, values[i]);
  }
  out.push_back(']');
}

}  // namespace

PlanRequest parse_plan_request(const std::string& line) {
  const JsonValue document = parse_json(line);
  if (!document.is_object()) throw ProtocolError("request must be a JSON object");

  PlanRequest request;
  bool saw_vertices = false, saw_edges = false;
  bool saw_base = false, saw_mutations = false;
  for (const auto& [key, value] : document.as_object()) {
    if (key == "type") {
      const std::string& type = require_string(value, "type");
      if (type == "plan") request.type = RequestType::kPlan;
      else if (type == "metrics") request.type = RequestType::kMetrics;
      else if (type == "warm_keys") request.type = RequestType::kWarmKeys;
      else if (type == "delta") request.type = RequestType::kDelta;
      else throw ProtocolError("unknown request type '" + type + "'");
    } else if (key == "id") {
      request.id = require_string(value, "id");
    } else if (key == "app") {
      const auto app = try_app_from_name(require_string(value, "app"));
      if (!app) throw ProtocolError("unknown app '" + value.as_string() + "'");
      request.app = *app;
    } else if (key == "machines") {
      if (!value.is_array()) throw ProtocolError("field 'machines' must be an array");
      for (const JsonValue& name : value.as_array()) {
        request.machines.push_back(require_string(name, "machines[]"));
      }
    } else if (key == "alpha") {
      const double alpha = require_number(value, "alpha");
      if (!(alpha > 1.0)) throw ProtocolError("field 'alpha' must be > 1");
      request.alpha = alpha;
    } else if (key == "vertices") {
      request.vertices = require_count(value, "vertices");
      saw_vertices = true;
    } else if (key == "edges") {
      request.edges = require_count(value, "edges");
      saw_edges = true;
    } else if (key == "partitioner") {
      try {
        request.partitioner = partitioner_from_string(require_string(value, "partitioner"));
      } catch (const std::invalid_argument& e) {
        throw ProtocolError(e.what());
      }
    } else if (key == "timeout_ms") {
      const std::uint64_t timeout = require_count(value, "timeout_ms");
      if (timeout == 0) throw ProtocolError("field 'timeout_ms' must be positive");
      request.timeout_ms = timeout;
    } else if (key == "limit") {
      const std::uint64_t limit = require_count(value, "limit");
      if (limit == 0) throw ProtocolError("field 'limit' must be positive");
      request.limit = limit;
    } else if (key == "base") {
      request.base = require_string(value, "base");
      saw_base = true;
    } else if (key == "mutations") {
      if (!value.is_array()) throw ProtocolError("field 'mutations' must be an array");
      saw_mutations = true;
      request.mutations.reserve(value.as_array().size());
      for (const JsonValue& item : value.as_array()) {
        request.mutations.push_back(parse_mutation(item));
      }
    } else if (key == "reprofile") {
      const auto mode = reprofile_mode_from_string(require_string(value, "reprofile"));
      if (!mode) {
        throw ProtocolError("field 'reprofile' must be 'auto', 'force', or 'never'");
      }
      request.reprofile = *mode;
    } else if (key == "drift_churn" || key == "drift_hist") {
      const double threshold = require_number(value, key.c_str());
      if (!(threshold >= 0.0) || !std::isfinite(threshold)) {
        throw ProtocolError("field '" + key + "' must be a non-negative number");
      }
      (key == "drift_churn" ? request.drift_churn : request.drift_hist) = threshold;
    } else if (key == "seed") {
      request.seed = require_count(value, "seed");
    } else {
      throw ProtocolError("unknown request field '" + key + "'");
    }
  }

  if (request.limit && request.type != RequestType::kWarmKeys) {
    throw ProtocolError("field 'limit' is only valid on warm_keys requests");
  }
  if (request.type != RequestType::kDelta &&
      (saw_base || saw_mutations || request.reprofile || request.drift_churn ||
       request.drift_hist || request.seed)) {
    throw ProtocolError(
        "fields 'base', 'mutations', 'reprofile', 'drift_churn', 'drift_hist', "
        "and 'seed' are only valid on delta requests");
  }
  if (request.type == RequestType::kMetrics ||
      request.type == RequestType::kWarmKeys) {
    return request;
  }
  if (request.type == RequestType::kDelta) {
    if (!saw_base || request.base.empty()) {
      throw ProtocolError("delta requests require a non-empty 'base' key");
    }
    if (!saw_mutations) {
      throw ProtocolError("delta requests require a 'mutations' array (may be empty)");
    }
    if (request.alpha || saw_vertices || saw_edges) {
      throw ProtocolError(
          "delta requests derive 'alpha'/'vertices'/'edges' from the base graph");
    }
    const bool saw_app = document.find("app") != nullptr;
    if (saw_app != !request.machines.empty()) {
      throw ProtocolError(
          "delta base creation requires both 'app' and a non-empty 'machines'");
    }
    return request;
  }

  const JsonValue* app_field = document.find("app");
  if (app_field == nullptr) throw ProtocolError("missing required field 'app'");
  if (request.machines.empty()) {
    throw ProtocolError("missing required field 'machines' (non-empty array)");
  }
  if (!request.alpha && !(saw_vertices && saw_edges)) {
    throw ProtocolError("request needs either 'alpha' or both 'vertices' and 'edges'");
  }
  if (saw_vertices && request.vertices == 0) {
    throw ProtocolError("field 'vertices' must be positive");
  }
  return request;
}

std::string serialize_request(const PlanRequest& request) {
  std::string out = "{";
  if (request.type == RequestType::kMetrics ||
      request.type == RequestType::kWarmKeys) {
    out += request.type == RequestType::kMetrics ? "\"type\":\"metrics\""
                                                 : "\"type\":\"warm_keys\"";
    if (!request.id.empty()) {
      out += ",\"id\":";
      append_json_string(out, request.id);
    }
    if (request.limit && request.type == RequestType::kWarmKeys) {
      out += ",\"limit\":";
      append_json_number(out, static_cast<double>(*request.limit));
    }
    out += "}";
    return out;
  }
  if (request.type == RequestType::kDelta) {
    out += "\"type\":\"delta\",\"id\":";
    append_json_string(out, request.id);
    out += ",\"base\":";
    append_json_string(out, request.base);
    if (!request.machines.empty()) {
      out += ",\"app\":";
      append_json_string(out, to_string(request.app));
      out += ",\"machines\":[";
      for (std::size_t i = 0; i < request.machines.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_json_string(out, request.machines[i]);
      }
      out += "]";
    }
    out += ",\"mutations\":[";
    for (std::size_t i = 0; i < request.mutations.size(); ++i) {
      const dynamic::Mutation& m = request.mutations[i];
      if (i > 0) out.push_back(',');
      out += "{\"op\":";
      append_json_string(out, dynamic::to_string(m.op));
      if (m.op == dynamic::MutationOp::kAddEdge ||
          m.op == dynamic::MutationOp::kRemoveEdge) {
        out += ",\"src\":";
        append_json_number(out, static_cast<double>(m.src));
        out += ",\"dst\":";
        append_json_number(out, static_cast<double>(m.dst));
      } else {
        out += ",\"id\":";
        append_json_number(out, static_cast<double>(m.src));
      }
      out += "}";
    }
    out += "]";
    if (request.reprofile) {
      out += ",\"reprofile\":";
      append_json_string(out, to_string(*request.reprofile));
    }
    if (request.drift_churn) {
      out += ",\"drift_churn\":";
      append_json_number(out, *request.drift_churn);
    }
    if (request.drift_hist) {
      out += ",\"drift_hist\":";
      append_json_number(out, *request.drift_hist);
    }
    if (request.seed) {
      out += ",\"seed\":";
      append_json_number(out, static_cast<double>(*request.seed));
    }
    if (request.partitioner) {
      out += ",\"partitioner\":";
      append_json_string(out, to_string(*request.partitioner));
    }
    if (request.timeout_ms) {
      out += ",\"timeout_ms\":";
      append_json_number(out, static_cast<double>(*request.timeout_ms));
    }
    out += "}";
    return out;
  }
  out += "\"id\":";
  append_json_string(out, request.id);
  out += ",\"app\":";
  append_json_string(out, to_string(request.app));
  out += ",\"machines\":[";
  for (std::size_t i = 0; i < request.machines.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_string(out, request.machines[i]);
  }
  out += "]";
  if (request.alpha) {
    out += ",\"alpha\":";
    append_json_number(out, *request.alpha);
  }
  if (request.vertices != 0 || request.edges != 0) {
    out += ",\"vertices\":";
    append_json_number(out, static_cast<double>(request.vertices));
    out += ",\"edges\":";
    append_json_number(out, static_cast<double>(request.edges));
  }
  if (request.partitioner) {
    out += ",\"partitioner\":";
    append_json_string(out, to_string(*request.partitioner));
  }
  if (request.timeout_ms) {
    out += ",\"timeout_ms\":";
    append_json_number(out, static_cast<double>(*request.timeout_ms));
  }
  out += "}";
  return out;
}

// --- response --------------------------------------------------------------

std::string_view to_string(PlanStatus status) noexcept {
  switch (status) {
    case PlanStatus::kOk: return "ok";
    case PlanStatus::kError: return "error";
    case PlanStatus::kTimeout: return "timeout";
    case PlanStatus::kOverloaded: return "overloaded";
  }
  return "error";
}

std::string serialize_response(const PlanResponse& response) {
  std::string out = "{\"id\":";
  append_json_string(out, response.id);
  if (!response.ok) {
    // kOk with ok=false cannot serialize as "ok"; keep the pair consistent.
    const PlanStatus status =
        response.status == PlanStatus::kOk ? PlanStatus::kError : response.status;
    out += ",\"status\":";
    append_json_string(out, std::string(to_string(status)));
    out += ",\"error\":";
    append_json_string(out, response.error);
    if (status == PlanStatus::kOverloaded) {
      out += ",\"queue_depth\":";
      append_json_number(out, static_cast<double>(response.queue_depth));
      out += ",\"retry_after_ms\":";
      append_json_number(out, static_cast<double>(response.retry_after_ms));
    }
    out += "}";
    return out;
  }
  out += ",\"status\":\"ok\",\"app\":";
  append_json_string(out, response.app);
  out += ",\"alpha\":";
  append_json_number(out, response.fitted_alpha);
  out += ",\"proxy_alpha\":";
  append_json_number(out, response.proxy_alpha);
  out += ",\"ccr\":";
  append_double_array(out, response.ccr);
  out += ",\"weights\":";
  append_double_array(out, response.weights);
  out += ",\"partitioner\":";
  append_json_string(out, response.partitioner);
  if (!response.degraded.empty()) {
    // Omitted entirely on the normal path, so a non-degraded plan's bytes are
    // unchanged from the pre-resilience protocol.
    out += ",\"degraded\":";
    append_json_string(out, response.degraded);
  }
  out += ",\"replication_factor\":";
  append_json_number(out, response.replication_factor);
  out += ",\"makespan_seconds\":";
  append_json_number(out, response.makespan_seconds);
  out += ",\"energy_joules\":";
  append_json_number(out, response.energy_joules);
  out += ",\"cost_usd\":";
  append_json_number(out, response.cost_usd);
  out += "}";
  return out;
}

PlanResponse parse_plan_response(const std::string& line) {
  const JsonValue document = parse_json(line);
  if (!document.is_object()) throw ProtocolError("response must be a JSON object");

  PlanResponse response;
  const auto number_or = [&](const char* key, double fallback) {
    const JsonValue* v = document.find(key);
    return v != nullptr ? require_number(*v, key) : fallback;
  };
  const auto string_or = [&](const char* key, const std::string& fallback) {
    const JsonValue* v = document.find(key);
    return v != nullptr ? require_string(*v, key) : fallback;
  };

  response.id = string_or("id", "");
  const std::string status = string_or("status", "");
  if (status == "ok") response.status = PlanStatus::kOk;
  else if (status == "timeout") response.status = PlanStatus::kTimeout;
  else if (status == "overloaded") response.status = PlanStatus::kOverloaded;
  else response.status = PlanStatus::kError;
  response.ok = response.status == PlanStatus::kOk;
  response.error = string_or("error", "");
  response.degraded = string_or("degraded", "");
  response.queue_depth =
      static_cast<std::uint64_t>(number_or("queue_depth", 0.0));
  response.retry_after_ms =
      static_cast<std::uint64_t>(number_or("retry_after_ms", 0.0));
  response.app = string_or("app", "");
  response.fitted_alpha = number_or("alpha", 0.0);
  response.proxy_alpha = number_or("proxy_alpha", 0.0);
  response.partitioner = string_or("partitioner", "");
  response.replication_factor = number_or("replication_factor", 0.0);
  response.makespan_seconds = number_or("makespan_seconds", 0.0);
  response.energy_joules = number_or("energy_joules", 0.0);
  response.cost_usd = number_or("cost_usd", 0.0);
  for (const char* key : {"ccr", "weights"}) {
    const JsonValue* v = document.find(key);
    if (v == nullptr) continue;
    if (!v->is_array()) throw ProtocolError(std::string("field '") + key +
                                            "' must be an array");
    auto& target = std::string_view(key) == "ccr" ? response.ccr : response.weights;
    for (const JsonValue& entry : v->as_array()) {
      target.push_back(require_number(entry, key));
    }
  }
  return response;
}

std::string serialize_error(const std::string& id, const std::string& message) {
  PlanResponse response;
  response.id = id;
  response.ok = false;
  response.status = PlanStatus::kError;
  response.error = message;
  return serialize_response(response);
}

std::string serialize_overloaded(const std::string& id, std::uint64_t queue_depth,
                                 std::uint64_t retry_after_ms) {
  PlanResponse response;
  response.id = id;
  response.ok = false;
  response.status = PlanStatus::kOverloaded;
  response.error = "queue at capacity, retry later";
  response.queue_depth = queue_depth;
  response.retry_after_ms = retry_after_ms;
  return serialize_response(response);
}

std::string serialize_warm_keys_response(const std::string& id,
                                         std::span<const WarmKey> keys) {
  std::string out = "{\"id\":";
  append_json_string(out, id);
  out += ",\"status\":\"ok\",\"warm_keys\":[";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"key\":";
    append_json_string(out, keys[i].key);
    out += ",\"hits\":";
    append_json_number(out, static_cast<double>(keys[i].hits));
    out += "}";
  }
  out += "]}";
  return out;
}

std::string serialize_delta_block(const DeltaInfo& info) {
  std::string out = "{\"base\":";
  append_json_string(out, info.base);
  out += ",\"version\":";
  append_json_number(out, static_cast<double>(info.version));
  out += ",\"live_vertices\":";
  append_json_number(out, static_cast<double>(info.live_vertices));
  out += ",\"live_edges\":";
  append_json_number(out, static_cast<double>(info.live_edges));
  out += ",\"churn\":";
  append_json_number(out, info.churn);
  out += ",\"hist_distance\":";
  append_json_number(out, info.hist_distance);
  out += info.reprofiled ? ",\"reprofiled\":true" : ",\"reprofiled\":false";
  out += ",\"digest\":\"";
  // 16 lowercase hex digits: a u64 does not round-trip through a JSON double.
  static const char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(info.digest >> shift) & 0xF]);
  }
  out += "\",\"moved_edges\":";
  append_json_number(out, static_cast<double>(info.moved_edges));
  out += ",\"replication_factor\":";
  append_json_number(out, info.replication_factor);
  out += ",\"imbalance\":";
  append_json_number(out, info.imbalance);
  out += "}";
  return out;
}

std::optional<DeltaInfo> parse_delta_block(const std::string& line) {
  const JsonValue document = parse_json(line);
  if (!document.is_object()) throw ProtocolError("response must be a JSON object");
  const JsonValue* block = document.find("delta");
  if (block == nullptr) return std::nullopt;
  if (!block->is_object()) throw ProtocolError("field 'delta' must be an object");

  DeltaInfo info;
  const auto number_or = [&](const char* key, double fallback) {
    const JsonValue* v = block->find(key);
    return v != nullptr ? require_number(*v, key) : fallback;
  };
  const JsonValue* base = block->find("base");
  if (base != nullptr) info.base = require_string(*base, "base");
  info.version = static_cast<std::uint64_t>(number_or("version", 0.0));
  info.live_vertices = static_cast<std::uint64_t>(number_or("live_vertices", 0.0));
  info.live_edges = static_cast<std::uint64_t>(number_or("live_edges", 0.0));
  info.churn = number_or("churn", 0.0);
  info.hist_distance = number_or("hist_distance", 0.0);
  const JsonValue* reprofiled = block->find("reprofiled");
  if (reprofiled != nullptr) {
    if (!reprofiled->is_bool()) throw ProtocolError("field 'reprofiled' must be a bool");
    info.reprofiled = reprofiled->as_bool();
  }
  if (const JsonValue* digest = block->find("digest"); digest != nullptr) {
    const std::string& hex = require_string(*digest, "digest");
    if (hex.size() != 16) throw ProtocolError("field 'digest' must be 16 hex digits");
    std::uint64_t value = 0;
    for (const char c : hex) {
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
      else throw ProtocolError("field 'digest' must be 16 hex digits");
    }
    info.digest = value;
  }
  info.moved_edges = static_cast<std::uint64_t>(number_or("moved_edges", 0.0));
  info.replication_factor = number_or("replication_factor", 0.0);
  info.imbalance = number_or("imbalance", 0.0);
  return info;
}

std::vector<WarmKey> parse_warm_keys_response(const std::string& line) {
  const JsonValue document = parse_json(line);
  if (!document.is_object()) {
    throw ProtocolError("warm_keys response must be a JSON object");
  }
  const JsonValue* status = document.find("status");
  if (status == nullptr || !status->is_string() || status->as_string() != "ok") {
    throw ProtocolError("warm_keys response is not ok");
  }
  const JsonValue* keys = document.find("warm_keys");
  if (keys == nullptr || !keys->is_array()) {
    throw ProtocolError("warm_keys response carries no warm_keys array");
  }
  std::vector<WarmKey> out;
  out.reserve(keys->as_array().size());
  for (const JsonValue& item : keys->as_array()) {
    if (!item.is_object()) throw ProtocolError("warm_keys entry must be an object");
    WarmKey warm;
    const JsonValue* key = item.find("key");
    if (key == nullptr) throw ProtocolError("warm_keys entry missing 'key'");
    warm.key = require_string(*key, "key");
    const JsonValue* hits = item.find("hits");
    warm.hits = hits != nullptr
                    ? static_cast<std::uint64_t>(require_number(*hits, "hits"))
                    : 0;
    out.push_back(std::move(warm));
  }
  return out;
}

}  // namespace pglb
