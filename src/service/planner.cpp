#include "service/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/cluster.hpp"
#include "core/ccr.hpp"
#include "core/profiler.hpp"
#include "core/time_database.hpp"
#include "cost/cost_model.hpp"
#include "gen/alpha_solver.hpp"
#include "machine/catalog.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "partition/replication_model.hpp"
#include "partition/weights.hpp"

namespace pglb {

Planner::Planner(PlannerOptions options, ServiceMetrics* metrics)
    : options_(options),
      metrics_(metrics),
      owned_pool_(options.threads > 0 ? std::make_unique<ThreadPool>(options.threads)
                                      : nullptr),
      suite_(options.proxy_scale, options.proxy_seed, owned_pool_.get()),
      cache_(options.cache_capacity, options.breaker) {}

namespace {

/// Sorted, deduplicated machine-class names — the cluster-composition-free
/// identity the profile cache keys on.
std::vector<std::string> machine_classes(const std::vector<std::string>& machines) {
  std::vector<std::string> classes = machines;
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

std::string join_classes(const std::vector<std::string>& classes) {
  std::string out;
  for (const std::string& c : classes) {
    if (!out.empty()) out.push_back('+');
    out += c;
  }
  return out;
}

/// Paper guidance (Fig. 9): the high-degree-aware streaming cuts win on
/// power-law graphs; a single machine needs no vertex cut at all.
PartitionerKind recommend_partitioner(const PlanRequest& request,
                                      MachineId num_machines) {
  if (request.partitioner) return *request.partitioner;
  if (num_machines == 1) return PartitionerKind::kChunking;
  return PartitionerKind::kHybrid;
}

}  // namespace

double Planner::resolve_proxy_alpha(double alpha, const CancelToken* cancel) {
  std::lock_guard<std::mutex> lock(suite_mutex_);
  return suite_.ensure_coverage(alpha, cancel).alpha;
}

double Planner::request_alpha(const PlanRequest& request) {
  if (request.alpha) return *request.alpha;
  const std::string memo_key =
      std::to_string(request.vertices) + "/" + std::to_string(request.edges);
  {
    std::lock_guard<std::mutex> lock(alpha_mutex_);
    const auto it = alpha_memo_.find(memo_key);
    if (it != alpha_memo_.end()) return it->second;
  }
  const auto vertices = static_cast<VertexId>(
      std::min<std::uint64_t>(request.vertices, std::numeric_limits<VertexId>::max()));
  const double alpha = fit_alpha_clamped(vertices, request.edges);
  std::lock_guard<std::mutex> lock(alpha_mutex_);
  if (alpha_memo_.size() >= 4096) alpha_memo_.clear();  // crude bound; refit is cheap
  alpha_memo_.emplace(memo_key, alpha);
  return alpha;
}

std::string Planner::profile_key(const PlanRequest& request) {
  const double proxy_alpha = resolve_proxy_alpha(request_alpha(request));
  return join_classes(machine_classes(request.machines)) + "|" +
         to_string(request.app) + "|" + canonical_alpha(proxy_alpha);
}

ProfileCache::EntryPtr Planner::profile(const std::vector<std::string>& classes,
                                        AppKind app, double proxy_alpha,
                                        const std::string& key,
                                        const CancelToken* cancel) {
  PGLB_TRACE_SPAN("planner.profile", "planner");
  bool computed = false;
  auto entry_ptr = cache_.get(key, [&]() -> ProfileCache::EntryPtr {
    computed = true;
    const StageTimer timer(metrics_, "profile");

    // Snapshot the proxy under the suite lock (ensure_coverage from another
    // thread may reallocate the proxy vector), then profile lock-free.
    EdgeList proxy_graph{0};
    GraphStats proxy_stats;
    {
      std::lock_guard<std::mutex> lock(suite_mutex_);
      const ProxySuite::Proxy& proxy = suite_.nearest(proxy_alpha);
      proxy_graph = proxy.graph;
      proxy_stats = proxy.stats;
    }

    auto entry = std::make_shared<ProfileEntry>();
    entry->proxy_alpha = proxy_alpha;
    entry->proxy_full_edges =
        static_cast<double>(proxy_stats.num_edges) / options_.proxy_scale;
    entry->proxy_full_vertices =
        static_cast<double>(proxy_stats.num_vertices) / options_.proxy_scale;
    entry->proxy_total_degree = total_degree_histogram(proxy_graph);
    // Each class profile is an independent single-machine virtual run; fan
    // out over the planner's pool into per-class slots, then emplace in class
    // order so the entry is byte-stable at any thread count.
    std::vector<double> class_seconds(classes.size(), 0.0);
    parallel_for(thread_pool(), classes.size(), 1,
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     class_seconds[i] = profile_single_machine(
                         machine_by_name(classes[i]), app, proxy_graph,
                         options_.proxy_scale, cancel);
                   }
                 });
    for (std::size_t i = 0; i < classes.size(); ++i) {
      entry->class_times.emplace_back(classes[i], class_seconds[i]);
    }
    // Mirror the fresh measurements into the durable CCR pool (the time
    // database a warm-state snapshot carries, docs/PERSIST.md).
    {
      std::lock_guard<std::mutex> lock(time_db_mutex_);
      for (std::size_t i = 0; i < classes.size(); ++i) {
        time_db_.record({app, proxy_alpha, classes[i]}, class_seconds[i]);
      }
    }
    if (metrics_ != nullptr) {
      metrics_->count("profile_runs", classes.size());
    }
    return entry;
  }, cancel);
  if (metrics_ != nullptr) {
    metrics_->count(computed ? "profile_cache_misses" : "profile_cache_hits");
  }
  return entry_ptr;
}

bool Planner::invalidate_profile(const std::string& key) {
  const bool removed = cache_.invalidate(key);
  if (removed) {
    if (metrics_ != nullptr) metrics_->count("cache.invalidations");
    global_registry().count("cache.invalidations");
  }
  return removed;
}

TimeDatabase Planner::time_database() const {
  std::lock_guard<std::mutex> lock(time_db_mutex_);
  return time_db_;
}

void Planner::merge_time_database(const TimeDatabase& restored) {
  std::lock_guard<std::mutex> lock(time_db_mutex_);
  time_db_.merge(restored);
}

PlanResponse Planner::degraded_plan(const PlanRequest& request,
                                    const Cluster& cluster, double alpha,
                                    double proxy_alpha) {
  // CCR-free fallback (ISSUE: graceful degradation).  The weights are the
  // thread-count heuristic of LeBeane et al. — computed by the very same
  // thread_count_weights() the ThreadCountEstimator baseline uses, so a
  // degraded plan is bit-identical to that baseline.  Predicted
  // makespan/energy/cost stay 0: without a profile there is nothing honest to
  // predict, and clients must not mistake a heuristic plan for a modelled one.
  PlanResponse response;
  response.id = request.id;
  response.ok = true;
  response.status = PlanStatus::kOk;
  response.app = to_string(request.app);
  response.fitted_alpha = alpha;
  response.proxy_alpha = proxy_alpha;
  try {
    response.weights = thread_count_weights(cluster);
    // Pseudo-CCR proportional to thread counts (slowest class = 1.0, matching
    // the Eq. 1 convention) so downstream consumers see a consistent shape.
    double min_threads = std::numeric_limits<double>::infinity();
    for (const MachineSpec& machine : cluster.machines()) {
      min_threads = std::min(min_threads, static_cast<double>(machine.compute_threads));
    }
    response.ccr.reserve(cluster.size());
    for (const MachineSpec& machine : cluster.machines()) {
      response.ccr.push_back(static_cast<double>(machine.compute_threads) / min_threads);
    }
    response.degraded = "thread_count";
  } catch (const std::exception&) {
    response.weights = uniform_weights(cluster.size());
    response.ccr.assign(cluster.size(), 1.0);
    response.degraded = "uniform";
  }
  response.partitioner = to_string(recommend_partitioner(request, cluster.size()));
  if (metrics_ != nullptr) metrics_->count("planner.degraded");
  global_registry().count("planner.degraded");
  return response;
}

PlanResponse Planner::plan(const PlanRequest& request) {
  PlanResponse response;
  response.id = request.id;
  // Arm the request's cooperative deadline.  The token travels two ways:
  // explicitly into the profiling fan-out (thread-locals do not cross pool
  // workers) and ambiently via CancelScope for poll_cancellation() sites on
  // this thread (partitioner loops).
  const std::uint64_t timeout_ms =
      request.timeout_ms ? *request.timeout_ms : options_.default_timeout_ms;
  const CancelToken token(timeout_ms > 0 ? Deadline::after_ms(timeout_ms)
                                         : Deadline::never());
  const CancelScope scope(token);
  try {
    const Cluster cluster = cluster_from_names(request.machines);
    const double alpha = request_alpha(request);
    double proxy_alpha = 0.0;
    ProfileCache::EntryPtr entry;
    try {
      proxy_alpha = resolve_proxy_alpha(alpha, &token);
      const auto classes = machine_classes(request.machines);
      const std::string key = join_classes(classes) + "|" + to_string(request.app) +
                              "|" + canonical_alpha(proxy_alpha);
      entry = profile(classes, request.app, proxy_alpha, key, &token);
    } catch (const CancelledError&) {
      throw;  // deadline expiry is a typed timeout, never a degraded plan
    } catch (const std::exception&) {
      // Profiling failed (injected fault, generator error, breaker open):
      // fall back rather than fail — a heuristic plan beats no plan.
      return degraded_plan(request, cluster, alpha, proxy_alpha);
    }

    // Expand per-class proxy runtimes to the cluster's machine order.
    std::vector<double> times(cluster.size(), 0.0);
    for (MachineId m = 0; m < cluster.size(); ++m) {
      const std::string& name = cluster.machine(m).name;
      for (const auto& [class_name, seconds] : entry->class_times) {
        if (class_name == name) {
          times[m] = seconds;
          break;
        }
      }
    }

    response.ok = true;
    response.status = PlanStatus::kOk;
    response.app = to_string(request.app);
    response.fitted_alpha = alpha;
    response.proxy_alpha = proxy_alpha;
    response.ccr = ccr_from_times(times);
    response.weights = shares_from_capabilities(response.ccr);
    response.partitioner =
        to_string(recommend_partitioner(request, cluster.size()));
    response.replication_factor =
        expected_replication_factor(entry->proxy_total_degree, response.weights);

    // Compute-bound makespan estimate: machine m handles share w_m of a graph
    // (E_req / E_proxy) times the profiled proxy's size, so it finishes in
    // t_m * w_m * ratio; the barrier waits for the slowest.  Under CCR
    // weights all terms are equal — the balanced ideal the paper targets.
    // When the request carries no graph size, estimates are at proxy scale.
    const double edges_req = request.edges > 0 ? static_cast<double>(request.edges)
                                               : entry->proxy_full_edges;
    const double work_ratio = edges_req / entry->proxy_full_edges;
    double makespan = 0.0;
    for (MachineId m = 0; m < cluster.size(); ++m) {
      makespan = std::max(makespan, times[m] * response.weights[m] * work_ratio);
    }
    response.makespan_seconds = makespan;

    double total_watts = 0.0;
    for (const MachineSpec& machine : cluster.machines()) {
      total_watts += machine.tdp_watts;
    }
    response.energy_joules = makespan * total_watts;
    response.cost_usd = cluster_cost_per_task(cluster, makespan);
  } catch (const CancelledError& e) {
    response = PlanResponse{};
    response.id = request.id;
    response.ok = false;
    response.status = PlanStatus::kTimeout;
    response.error = e.what();
    if (metrics_ != nullptr) metrics_->count("service.timeouts");
    global_registry().count("service.timeouts");
  } catch (const std::exception& e) {
    response = PlanResponse{};
    response.id = request.id;
    response.ok = false;
    response.status = PlanStatus::kError;
    response.error = e.what();
    if (metrics_ != nullptr) metrics_->count("plan_errors");
  }
  return response;
}

}  // namespace pglb
