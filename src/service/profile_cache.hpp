#pragma once
// LRU cache over proxy-profiling results, keyed on the stable string form of
// (machine-class set, application, proxy alpha).  Profiling is the expensive
// stage of a planning request (Sec. III-B's one-time cost); everything after
// it is arithmetic.  Since single-machine proxy runtimes are independent of
// cluster composition, every cluster drawn from the same machine classes
// shares one entry — the service-side mirror of the paper's observation that
// "varying the cluster composition among existing machines does not require
// CCR updates".
//
// Concurrency: get() is single-flight.  The first thread to miss a key
// inserts a shared_future and computes the entry outside the cache lock;
// concurrent requests for the same key block on that future instead of
// re-profiling.  A failed computation is erased so later requests retry.
//
// Resilience (docs/ROBUSTNESS.md):
//  * Waiters can pass a CancelToken; a waiter whose deadline passes while the
//    owner is still profiling throws CancelledError instead of blocking on a
//    possibly wedged computation.
//  * A per-key circuit breaker guards the compute path: `failure_threshold`
//    consecutive failures (exceptions, including timeouts) open the breaker,
//    and while it is open get() throws BreakerOpenError immediately — callers
//    degrade instead of queueing behind a known-bad profile.  After
//    `cooldown_ms` the breaker goes half-open and admits ONE trial compute;
//    success closes it, failure re-opens it for another cooldown.  The clock
//    is injectable so tests drive transitions on a virtual timeline.

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/deadline.hpp"
#include "util/histogram.hpp"

namespace pglb {

/// One profiled (machine-class set, app, proxy) combination: everything the
/// planner needs to derive a full plan for ANY cluster built from these
/// classes, without touching the proxy suite again.
struct ProfileEntry {
  double proxy_alpha = 0.0;
  /// Machine-class name -> profiled single-machine proxy runtime (seconds).
  std::vector<std::pair<std::string, double>> class_times;
  /// Paper-scale (re-inflated) size of the proxy the times were measured on;
  /// scales the makespan prediction to the request's graph size.
  double proxy_full_edges = 0.0;
  double proxy_full_vertices = 0.0;
  /// Total-degree histogram of the proxy, input to the analytic replication
  /// model (partition/replication_model.hpp).
  ExactHistogram proxy_total_degree;
};

/// get() on a key whose breaker is open: the computation has failed
/// repeatedly and is in cooldown; callers should degrade, not retry.
class BreakerOpenError : public std::runtime_error {
 public:
  BreakerOpenError(const std::string& key, std::uint64_t retry_in_ms)
      : std::runtime_error("circuit breaker open for profile '" + key +
                           "' (retry in " + std::to_string(retry_in_ms) + " ms)"),
        retry_in_ms_(retry_in_ms) {}

  std::uint64_t retry_in_ms() const noexcept { return retry_in_ms_; }

 private:
  std::uint64_t retry_in_ms_;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

struct BreakerOptions {
  /// Consecutive compute failures on one key that open its breaker.
  int failure_threshold = 3;
  /// How long an open breaker rejects before admitting a half-open trial.
  std::uint64_t cooldown_ms = 10'000;
  /// Monotonic milliseconds source; null = steady clock.  Tests inject a
  /// virtual clock so open -> half-open -> closed transitions are exact.
  std::function<std::uint64_t()> clock_ms;
};

struct ProfileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;       ///< explicit invalidate() removals
  std::uint64_t breaker_opens = 0;       ///< closed/half-open -> open edges
  std::uint64_t breaker_rejections = 0;  ///< get() calls shed by an open breaker
  std::size_t size = 0;
  std::size_t capacity = 0;
  /// Estimated resident bytes of the completed entries (keys + class times +
  /// degree histograms) — the cache.bytes occupancy gauge.
  std::size_t approx_bytes = 0;

  double hit_rate() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class ProfileCache {
 public:
  using EntryPtr = std::shared_ptr<const ProfileEntry>;

  explicit ProfileCache(std::size_t capacity, BreakerOptions breaker = {});

  /// Return the entry for `key`, computing it via `compute` on a miss.
  /// Throws whatever `compute` throws (and leaves the key uncached), throws
  /// BreakerOpenError when the key's breaker is open, and — when `cancel` is
  /// given — throws CancelledError if the token fires while waiting on
  /// another thread's in-flight computation of the same key.
  EntryPtr get(const std::string& key, const std::function<EntryPtr()>& compute,
               const CancelToken* cancel = nullptr);

  ProfileCacheStats stats() const;

  /// Breaker state of `key` right now (kClosed for unknown keys).  An open
  /// breaker whose cooldown has elapsed reports kHalfOpen.
  BreakerState breaker_state(const std::string& key) const;

  /// Drop every entry and every breaker record (counters are kept).
  void clear();

  // --- invalidation (docs/DYNAMIC.md) --------------------------------------

  /// Explicitly evict `key` (delta-driven staleness, as opposed to capacity
  /// pressure).  Returns true when an entry was removed; bumps the key's
  /// generation and the invalidations counter either way only on removal.
  /// An in-flight computation survives through its waiters' shared_future —
  /// it just loses cache residency, exactly like a capacity eviction.
  bool invalidate(const std::string& key);

  /// How many times `key` has been invalidated since process start (0 for
  /// never-invalidated keys) — exported per key in the metrics response so
  /// delta-driven eviction is observable.
  std::uint64_t generation(const std::string& key) const;

  /// All (key, generation) pairs with generation > 0, key-sorted for a
  /// deterministic metrics payload.
  std::vector<std::pair<std::string, std::uint64_t>> generations() const;

  // --- snapshot/restore (docs/PERSIST.md) ----------------------------------

  /// One exportable cache entry: the key, how often it hit since insertion
  /// (restored entries carry their pre-restart count forward), and the
  /// completed profile.
  struct ExportedEntry {
    std::string key;
    std::uint64_t hits = 0;
    EntryPtr entry;
  };

  /// Completed entries in recency order (most recently used first).  Entries
  /// still computing, failed, or evicted are not included — a snapshot only
  /// ever carries profiles that were actually served.
  std::vector<ExportedEntry> export_entries() const;

  /// Insert a restored entry as an already-resolved future at the LRU end
  /// (callers import in MRU-first export order, so recency is preserved).
  /// Returns false — and imports nothing — when the key is already present
  /// or the cache is full; restores never evict live entries and never count
  /// as hits or misses.
  bool import_entry(const std::string& key, EntryPtr entry, std::uint64_t hits);

  /// The `limit` hottest completed keys with their hit counts, ordered by
  /// hits descending (ties in recency order) — the warm_keys payload a
  /// replica reports so a router can pre-warm a newcomer.
  std::vector<std::pair<std::string, std::uint64_t>> hot_keys(std::size_t limit) const;

 private:
  struct Slot {
    std::string key;
    std::uint64_t id = 0;  ///< distinguishes re-inserted keys on the error path
    std::uint64_t hits = 0;  ///< per-entry hit count (snapshots + warm_keys)
    std::shared_future<EntryPtr> future;
  };

  struct Breaker {
    int consecutive_failures = 0;
    bool open = false;
    bool trial_in_flight = false;  ///< half-open admitted one compute
    std::uint64_t opened_at_ms = 0;
  };

  std::uint64_t now_ms() const;
  /// Pre-compute breaker gate; throws BreakerOpenError (caller holds mutex_).
  void admit_or_reject(const std::string& key);
  void record_outcome(const std::string& key, bool success);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  BreakerOptions breaker_options_;
  std::list<Slot> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Slot>::iterator> index_;
  std::unordered_map<std::string, Breaker> breakers_;
  std::unordered_map<std::string, std::uint64_t> generations_;
  std::uint64_t next_slot_id_ = 1;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t breaker_opens_ = 0;
  std::uint64_t breaker_rejections_ = 0;
};

}  // namespace pglb
