#pragma once
// LRU cache over proxy-profiling results, keyed on the stable string form of
// (machine-class set, application, proxy alpha).  Profiling is the expensive
// stage of a planning request (Sec. III-B's one-time cost); everything after
// it is arithmetic.  Since single-machine proxy runtimes are independent of
// cluster composition, every cluster drawn from the same machine classes
// shares one entry — the service-side mirror of the paper's observation that
// "varying the cluster composition among existing machines does not require
// CCR updates".
//
// Concurrency: get() is single-flight.  The first thread to miss a key
// inserts a shared_future and computes the entry outside the cache lock;
// concurrent requests for the same key block on that future instead of
// re-profiling.  A failed computation is erased so later requests retry.

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/histogram.hpp"

namespace pglb {

/// One profiled (machine-class set, app, proxy) combination: everything the
/// planner needs to derive a full plan for ANY cluster built from these
/// classes, without touching the proxy suite again.
struct ProfileEntry {
  double proxy_alpha = 0.0;
  /// Machine-class name -> profiled single-machine proxy runtime (seconds).
  std::vector<std::pair<std::string, double>> class_times;
  /// Paper-scale (re-inflated) size of the proxy the times were measured on;
  /// scales the makespan prediction to the request's graph size.
  double proxy_full_edges = 0.0;
  double proxy_full_vertices = 0.0;
  /// Total-degree histogram of the proxy, input to the analytic replication
  /// model (partition/replication_model.hpp).
  ExactHistogram proxy_total_degree;
};

struct ProfileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;

  double hit_rate() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class ProfileCache {
 public:
  using EntryPtr = std::shared_ptr<const ProfileEntry>;

  explicit ProfileCache(std::size_t capacity);

  /// Return the entry for `key`, computing it via `compute` on a miss.
  /// Throws whatever `compute` throws (and leaves the key uncached).
  EntryPtr get(const std::string& key, const std::function<EntryPtr()>& compute);

  ProfileCacheStats stats() const;

  /// Drop every entry (counters are kept).
  void clear();

 private:
  struct Slot {
    std::string key;
    std::uint64_t id = 0;  ///< distinguishes re-inserted keys on the error path
    std::shared_future<EntryPtr> future;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Slot> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Slot>::iterator> index_;
  std::uint64_t next_slot_id_ = 1;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace pglb
