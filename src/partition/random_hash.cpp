#include "partition/random_hash.hpp"

#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace pglb {

PartitionAssignment RandomHashPartitioner::partition(const EdgeList& graph,
                                                     std::span<const double> weights,
                                                     std::uint64_t seed) const {
  PGLB_TRACE_SPAN("partition.random_hash", "partition");
  const auto shares = normalized_weights(weights);
  const auto cum = prefix_sum(shares);

  PartitionAssignment result;
  result.num_machines = static_cast<MachineId>(shares.size());
  result.edge_to_machine.resize(graph.num_edges());

  // Hash on the edge *position* as well as its endpoints so multi-edges do
  // not pile onto one machine.
  EdgeId index = 0;
  for (const Edge& e : graph.edges()) {
    const std::uint64_t h = hash_combine(hash_edge(e.src, e.dst, seed), index);
    result.edge_to_machine[index++] = static_cast<MachineId>(weighted_pick(h, cum));
  }
  return result;
}

}  // namespace pglb
