#include "partition/replication_model.hpp"

#include <cmath>
#include <stdexcept>

namespace pglb {

namespace {

void validate_shares(std::span<const double> shares) {
  double total = 0.0;
  for (const double p : shares) {
    if (!(p > 0.0) || p > 1.0) {
      throw std::invalid_argument("replication_model: shares must be in (0, 1]");
    }
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    throw std::invalid_argument("replication_model: shares must sum to 1");
  }
}

}  // namespace

double expected_replicas(std::uint64_t degree, std::span<const double> shares) {
  validate_shares(shares);
  if (degree == 0) return 0.0;
  double total = 0.0;
  for (const double p : shares) {
    total += 1.0 - std::pow(1.0 - p, static_cast<double>(degree));
  }
  return total;
}

double expected_replication_factor(const ExactHistogram& hist,
                                   std::span<const double> shares) {
  validate_shares(shares);
  double replicas = 0.0;
  double vertices = 0.0;
  for (std::uint64_t d = 1; d <= hist.max_value(); ++d) {
    const auto count = hist.count_of(d);
    if (count == 0) continue;
    replicas += static_cast<double>(count) * expected_replicas(d, shares);
    vertices += static_cast<double>(count);
  }
  return vertices > 0.0 ? replicas / vertices : 0.0;
}

std::vector<double> expected_mirrors_per_machine(const ExactHistogram& hist,
                                                 std::span<const double> shares) {
  validate_shares(shares);
  std::vector<double> mirrors(shares.size(), 0.0);
  for (std::uint64_t d = 1; d <= hist.max_value(); ++d) {
    const auto count = hist.count_of(d);
    if (count == 0) continue;
    for (std::size_t m = 0; m < shares.size(); ++m) {
      const double present = 1.0 - std::pow(1.0 - shares[m], static_cast<double>(d));
      // Master goes to machine m with probability ~ shares[m]; everything
      // else present on m is a mirror.
      const double mirror_prob = present * (1.0 - shares[m]);
      mirrors[m] += static_cast<double>(count) * mirror_prob;
    }
  }
  return mirrors;
}

ExactHistogram total_degree_histogram(const EdgeList& graph) {
  ExactHistogram hist;
  for (const EdgeId d : graph.total_degrees()) hist.add(d);
  return hist;
}

}  // namespace pglb
