#pragma once
// Heterogeneity-aware Random Hash partitioner (Sec. II-B1, Fig. 4).
//
// The PowerGraph baseline hashes each edge to a machine uniformly; the
// heterogeneity-aware extension biases the hash so each machine's probability
// of receiving an edge equals its capability share.

#include "partition/partitioner.hpp"

namespace pglb {

class RandomHashPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "random_hash"; }

  PartitionAssignment partition(const EdgeList& graph, std::span<const double> weights,
                                std::uint64_t seed) const override;
};

}  // namespace pglb
