#pragma once
// Heterogeneity-aware Grid partitioner (Sec. II-B3, Fig. 5).
//
// Machines form a sqrt(M) x sqrt(M) grid; a *shard* is a row or column.  Each
// vertex hashes (weight-biased) to a home machine, whose row+column form its
// constraint set; an edge may only go to the intersection of its endpoints'
// constraint sets, bounding each vertex's replicas to O(2 sqrt(M)) and thus
// the communication fan-out.  Within the intersection the machine with the
// maximum CCR-weighted score (capability share over current load) wins.

#include "partition/partitioner.hpp"

namespace pglb {

class GridPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "grid"; }

  /// Throws std::invalid_argument when the machine count is not a perfect
  /// square (the paper's stated constraint).
  PartitionAssignment partition(const EdgeList& graph, std::span<const double> weights,
                                std::uint64_t seed) const override;
};

}  // namespace pglb
