#pragma once
// Factory over the five partitioning algorithms the paper evaluates
// (Fig. 9's x-axis groups).

#include <memory>
#include <span>
#include <string>

#include "partition/ginger.hpp"
#include "partition/hdrf.hpp"
#include "partition/hybrid.hpp"
#include "partition/partitioner.hpp"

namespace pglb {

enum class PartitionerKind {
  // The paper's five algorithms (Sec. II).
  kRandomHash,
  kOblivious,
  kGrid,
  kHybrid,
  kGinger,
  // Extensions: contiguous chunking (GraphChi-style control baseline) and
  // HDRF (Petroni et al. streaming vertex-cut).
  kChunking,
  kHdrf,
};

const char* to_string(PartitionerKind kind);
PartitionerKind partitioner_from_string(const std::string& name);

struct PartitionerOptions {
  HybridOptions hybrid;
  GingerOptions ginger;
  HdrfOptions hdrf;
};

std::unique_ptr<Partitioner> make_partitioner(PartitionerKind kind,
                                              const PartitionerOptions& options = {});

/// The paper's five kinds in paper order (random, oblivious, grid, hybrid,
/// ginger) — what the figure benches iterate.
std::span<const PartitionerKind> all_partitioner_kinds();

/// Paper's five plus the extensions (chunking, hdrf).
std::span<const PartitionerKind> extended_partitioner_kinds();

/// The kinds applicable to a cluster of `num_machines` machines (Grid is
/// excluded when the count is not a perfect square — Sec. II-B3).
std::vector<PartitionerKind> applicable_partitioner_kinds(MachineId num_machines);

}  // namespace pglb
