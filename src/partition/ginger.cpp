#include "partition/ginger.hpp"

#include <algorithm>
#include <limits>

#include "graph/builder.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace pglb {

PartitionAssignment GingerPartitioner::partition(const EdgeList& graph,
                                                 std::span<const double> weights,
                                                 std::uint64_t seed) const {
  PGLB_TRACE_SPAN("partition.ginger", "partition");
  const auto shares = normalized_weights(weights);
  const auto cum = prefix_sum(shares);
  const auto num_machines = static_cast<MachineId>(shares.size());
  const VertexId n = graph.num_vertices();

  const auto in_degree = graph.in_degrees();
  const Csr in_csr = build_in_csr(graph);

  // Phase-1 state: every vertex's in-edge group starts at the weighted hash
  // of the vertex (the Hybrid pass-1 placement).
  std::vector<MachineId> location(n);
  for (VertexId v = 0; v < n; ++v) {
    location[v] = static_cast<MachineId>(weighted_pick(hash_u64(v, seed), cum));
  }

  // Running vertex / edge tallies per machine for the balance penalty.
  std::vector<double> vertex_count(num_machines, 0.0);
  std::vector<double> edge_count(num_machines, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    vertex_count[location[v]] += 1.0;
    if (in_degree[v] <= options_.high_degree_threshold) {
      edge_count[location[v]] += static_cast<double>(in_degree[v]);
    }
  }
  // High-degree in-edges are scattered by source hash; tally where they land.
  for (const Edge& e : graph.edges()) {
    if (in_degree[e.dst] > options_.high_degree_threshold) {
      edge_count[weighted_pick(hash_u64(e.src, seed), cum)] += 1.0;
    }
  }

  const double total_vertices = static_cast<double>(n);
  const double total_edges = std::max<double>(1.0, static_cast<double>(graph.num_edges()));
  const double v_per_e = total_vertices / total_edges;
  const double avg_in_degree = total_edges / std::max(1.0, total_vertices);

  // Fennel balance penalty for adding a vertex to machine i, scaled by the
  // heterogeneity factor 1/w_i so capable machines absorb more.
  auto normalized_load = [&](MachineId i) {
    return (vertex_count[i] + v_per_e * edge_count[i]) / (shares[i] * 2.0 * total_vertices);
  };
  auto balance_penalty = [&](MachineId i) {
    return options_.gamma * avg_in_degree * normalized_load(i);
  };
  // Hard guard: the linear penalty alone cannot stop locality snowballing on
  // community-structured graphs, so machines drifting more than `slack` of
  // their weighted share above the emptiest one drop out of the candidate
  // set (analogous to PowerGraph's greedy balance constraint).
  constexpr double kBalanceSlack = 0.05;

  // Second round: stream low-degree vertices, moving each to its best-score
  // machine.  Neighbour locality counts use each neighbour's *current* group
  // location (already-reassigned neighbours reflect their new home).
  std::vector<double> neighbor_hits(num_machines, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    if (in_degree[v] > options_.high_degree_threshold || in_degree[v] == 0) continue;

    std::fill(neighbor_hits.begin(), neighbor_hits.end(), 0.0);
    for (const VertexId u : in_csr.neighbors(v)) neighbor_hits[location[u]] += 1.0;

    double min_norm_load = std::numeric_limits<double>::infinity();
    for (MachineId i = 0; i < num_machines; ++i) {
      min_norm_load = std::min(min_norm_load, normalized_load(i));
    }

    MachineId best = kInvalidMachine;
    double best_score = -std::numeric_limits<double>::infinity();
    std::uint64_t best_tie = 0;
    const std::uint64_t tie_hash = hash_u64(v, seed ^ 0x5eedu);
    for (MachineId i = 0; i < num_machines; ++i) {
      if (normalized_load(i) > min_norm_load + kBalanceSlack) continue;
      const double score = neighbor_hits[i] - balance_penalty(i);
      const std::uint64_t tie = hash_u64(tie_hash, i);
      if (score > best_score || (score == best_score && tie < best_tie)) {
        best = i;
        best_score = score;
        best_tie = tie;
      }
    }

    if (best != location[v]) {
      const auto moved_edges = static_cast<double>(in_degree[v]);
      vertex_count[location[v]] -= 1.0;
      edge_count[location[v]] -= moved_edges;
      vertex_count[best] += 1.0;
      edge_count[best] += moved_edges;
      location[v] = best;
    }
  }

  // Materialise the edge assignment: low-degree in-edges follow their
  // target's final group; high-degree in-edges follow the source hash.
  PartitionAssignment result;
  result.num_machines = num_machines;
  result.edge_to_machine.resize(graph.num_edges());
  EdgeId index = 0;
  for (const Edge& e : graph.edges()) {
    if (in_degree[e.dst] > options_.high_degree_threshold) {
      result.edge_to_machine[index] =
          static_cast<MachineId>(weighted_pick(hash_u64(e.src, seed), cum));
    } else {
      result.edge_to_machine[index] = location[e.dst];
    }
    ++index;
  }
  return result;
}

}  // namespace pglb
