#pragma once
// Resumable scorer state for the streaming partitioners (docs/DYNAMIC.md).
//
// The streaming family (hybrid, HDRF, oblivious, grid) assigns edges one at a
// time against evolving per-vertex / per-machine state.  An IncrementalState
// externalizes exactly that state so the delta planner can keep extending an
// assignment as mutation batches arrive instead of re-partitioning from
// scratch.
//
// The contract that makes the scratch-equivalence gate work: each
// implementation's assign loop is the corresponding Partitioner's loop body,
// verbatim.  Feeding an entire graph through a FRESH state as one batch
// yields the same assignment, bit for bit, as Partitioner::partition on that
// graph — that is both the unit test and how the delta planner rebuilds its
// state after a full re-profile.
//
// Retraction is the documented approximation: removing an edge returns its
// load to the pool (and rolls back degree counters where the scorer keeps
// them), but replica masks stay monotone — un-replicating a vertex would
// require re-deriving which surviving edges pinned it, which is exactly the
// from-scratch work this subsystem avoids.  Drift tracking (src/core/drift.*)
// bounds how long the approximation is allowed to accumulate before a full
// re-profile resets everything.
//
// chunking and random_hash need no scorer state (supports() == false): the
// delta planner recomputes them over the live edge list each batch, which is
// already O(E) cheap by construction.  ginger is offline-iterative and is
// rejected at the protocol layer.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "partition/factory.hpp"
#include "persist/snapshot.hpp"

namespace pglb {

class IncrementalState {
 public:
  virtual ~IncrementalState() = default;

  virtual PartitionerKind kind() const noexcept = 0;

  /// Grow per-vertex state to cover ids in [0, count).  Growth only; the
  /// vertex space never shrinks between full rebuilds.
  virtual void ensure_vertices(VertexId count) = 0;

  /// Assign every edge of `batch` in order, appending one owner per edge to
  /// `out`.  Endpoints must be covered by ensure_vertices first.  Stateful:
  /// each call continues where the previous one stopped, and one call over a
  /// whole graph from a fresh state reproduces the scratch partitioner.
  virtual void assign_batch(std::span<const Edge> batch,
                            std::vector<MachineId>& out) = 0;

  /// Roll back the load (and degree counters) edge `e`, previously assigned
  /// to `owner`, contributed.  Replica masks are intentionally left monotone;
  /// see the header comment.
  virtual void retract(const Edge& e, MachineId owner) = 0;

  /// Serialize internal state with the persist payload primitives.  Weights,
  /// seed, and options are NOT encoded — the caller owns those and passes
  /// them back to decode().
  virtual void encode(std::string& out) const = 0;

  std::uint64_t seed() const noexcept { return seed_; }

  /// True for the streaming family that carries scorer state.
  static bool supports(PartitionerKind kind) noexcept;

  /// Fresh state for `kind`.  Validates like the scratch partitioner
  /// (positive weights; machine-count limits) and throws
  /// std::invalid_argument on the same inputs, or on an unsupported kind.
  static std::unique_ptr<IncrementalState> create(
      PartitionerKind kind, std::span<const double> weights, std::uint64_t seed,
      const PartitionerOptions& options = {});

  /// create() followed by restoring an encode()d payload.  Throws
  /// persist::SnapshotError on malformed bytes.
  static std::unique_ptr<IncrementalState> decode(
      PartitionerKind kind, persist::Cursor& cursor,
      std::span<const double> weights, std::uint64_t seed,
      const PartitionerOptions& options = {});

 protected:
  explicit IncrementalState(std::uint64_t seed) : seed_(seed) {}

  virtual void decode_state(persist::Cursor& cursor) = 0;

  std::uint64_t seed_;
};

}  // namespace pglb
