#include "partition/weights.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pglb {

std::vector<double> uniform_weights(MachineId num_machines) {
  if (num_machines == 0) throw std::invalid_argument("uniform_weights: no machines");
  return std::vector<double>(num_machines, 1.0 / static_cast<double>(num_machines));
}

std::vector<double> thread_count_weights(const Cluster& cluster) {
  std::vector<double> weights(cluster.size());
  for (MachineId m = 0; m < cluster.size(); ++m) {
    weights[m] = static_cast<double>(cluster.machine(m).compute_threads);
  }
  return shares_from_capabilities(weights);
}

std::vector<double> shares_from_capabilities(std::span<const double> capabilities) {
  if (capabilities.empty()) {
    throw std::invalid_argument("shares_from_capabilities: empty capability vector");
  }
  double total = 0.0;
  for (const double c : capabilities) {
    if (!(c > 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument("shares_from_capabilities: capabilities must be positive");
    }
    total += c;
  }
  std::vector<double> shares(capabilities.begin(), capabilities.end());
  for (double& s : shares) s /= total;
  return shares;
}

double imbalance_factor(std::span<const EdgeId> edge_counts,
                        std::span<const double> target_shares) {
  if (edge_counts.size() != target_shares.size()) {
    throw std::invalid_argument("imbalance_factor: size mismatch");
  }
  EdgeId total = 0;
  for (const EdgeId c : edge_counts) total += c;
  if (total == 0) return 1.0;
  double worst = 0.0;
  for (std::size_t m = 0; m < edge_counts.size(); ++m) {
    if (target_shares[m] <= 0.0) {
      throw std::invalid_argument("imbalance_factor: target shares must be positive");
    }
    const double achieved = static_cast<double>(edge_counts[m]) / static_cast<double>(total);
    worst = std::max(worst, achieved / target_shares[m]);
  }
  return worst;
}

}  // namespace pglb
