#pragma once
// HDRF — High-Degree (are) Replicated First (Petroni et al., CIKM'15) —
// extension partitioner beyond the paper's five.
//
// A streaming vertex-cut that favours replicating high-degree endpoints:
// for edge (u, v) each machine p is scored
//
//   C(p) = C_rep(p) + lambda * C_bal(p)
//   C_rep(p) = g(u, p) + g(v, p)
//   g(w, p)  = (1 + (1 - theta_w)) if p already hosts w else 0,
//              theta_w = deg(w) / (deg(u) + deg(v))   (partial degrees)
//   C_bal(p) = (maxsize - size(p)) / (eps + maxsize - minsize)
//
// Heterogeneity awareness replaces raw sizes with weighted loads
// size(p) / share(p), so a machine "fills up" relative to its capability —
// the same CCR hook the paper adds to Oblivious.

#include "partition/partitioner.hpp"

namespace pglb {

struct HdrfOptions {
  /// Balance weight lambda; Petroni et al. recommend ~1.
  double lambda = 1.0;
};

class HdrfPartitioner final : public Partitioner {
 public:
  explicit HdrfPartitioner(HdrfOptions options = {}) : options_(options) {}

  std::string name() const override { return "hdrf"; }

  PartitionAssignment partition(const EdgeList& graph, std::span<const double> weights,
                                std::uint64_t seed) const override;

  const HdrfOptions& options() const noexcept { return options_; }

 private:
  HdrfOptions options_;
};

}  // namespace pglb
