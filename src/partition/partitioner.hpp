#pragma once
// Streaming graph-partitioner interface (Sec. II of the paper).
//
// A partitioner assigns every edge of the input to one machine (vertex-cut
// semantics: vertices incident to edges on several machines get replicated as
// mirrors).  Heterogeneity awareness enters through the `weights` vector —
// the normalised capability share of each machine (uniform, thread-count
// [prior work 5], or CCR-derived [this paper]).  All partitioners are pure
// functions of (graph, weights, seed).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"

namespace pglb {

struct PartitionAssignment {
  MachineId num_machines = 0;
  /// edge_to_machine[i] is the owner of graph.edges()[i].
  std::vector<MachineId> edge_to_machine;

  /// Edges owned by each machine.
  std::vector<EdgeId> machine_edge_counts() const;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual std::string name() const = 0;

  /// `weights` must have one positive entry per machine; they are normalised
  /// internally.  Throws std::invalid_argument on malformed weights.
  virtual PartitionAssignment partition(const EdgeList& graph,
                                        std::span<const double> weights,
                                        std::uint64_t seed) const = 0;

 protected:
  /// Validate + normalise weights to sum 1.
  static std::vector<double> normalized_weights(std::span<const double> weights);
};

}  // namespace pglb
