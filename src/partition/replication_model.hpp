#pragma once
// Analytic replication model for weighted random-hash vertex cuts.
//
// Under Random Hash with machine probabilities p_m, a vertex of degree d has
// a replica on machine m with probability 1 - (1 - p_m)^d, so
//
//   E[#replicas(v)] = sum_m (1 - (1 - p_m)^d)
//
// (PowerGraph's Theorem 5.2, generalised to non-uniform probabilities).
// This predicts the replication factor — and hence the mirror traffic — of a
// candidate weight vector WITHOUT partitioning, which the communication-aware
// weight refinement (core/comm_aware.hpp) exploits.

#include <span>

#include "graph/stats.hpp"
#include "util/histogram.hpp"

namespace pglb {

/// Expected replicas of a single vertex with total degree `degree`.
double expected_replicas(std::uint64_t degree, std::span<const double> shares);

/// Expected replication factor over a degree histogram (vertices with degree
/// zero are excluded, matching compute_partition_metrics()).
double expected_replication_factor(const ExactHistogram& total_degree_histogram,
                                   std::span<const double> shares);

/// Expected mirrors per machine: a degree-d vertex is replicated on m with
/// probability 1-(1-p_m)^d and is master elsewhere with probability
/// ~ (1 - p_m) of that; we approximate mirrors(m) = replicas(m) - masters(m)
/// with masters distributed proportionally to p_m.
std::vector<double> expected_mirrors_per_machine(
    const ExactHistogram& total_degree_histogram, std::span<const double> shares);

/// Convenience: total-degree histogram of a graph.
ExactHistogram total_degree_histogram(const EdgeList& graph);

}  // namespace pglb
