#include "partition/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/hash.hpp"

namespace pglb {

namespace {

// Same validation + normalisation as Partitioner::normalized_weights (that
// one is protected); the two must stay in lockstep for scratch equivalence.
std::vector<double> normalize(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("partition: weights must be non-empty");
  double total = 0.0;
  for (const double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("partition: weights must be positive and finite");
    }
    total += w;
  }
  std::vector<double> normalized(weights.begin(), weights.end());
  for (double& w : normalized) w /= total;
  return normalized;
}

// Sparse (index, value) encoding for per-vertex arrays — after a few batches
// most vertices carry state, but fresh post-rebuild states are near-empty and
// the format stays O(nonzero).
template <typename T>
void encode_sparse(std::string& out, const std::vector<T>& values) {
  persist::append_u64(out, values.size());
  std::uint64_t nonzero = 0;
  for (const T& v : values) {
    if (v != 0) ++nonzero;
  }
  persist::append_u64(out, nonzero);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] == 0) continue;
    persist::append_u32(out, static_cast<std::uint32_t>(i));
    persist::append_u64(out, static_cast<std::uint64_t>(values[i]));
  }
}

template <typename T>
std::vector<T> decode_sparse(persist::Cursor& cursor) {
  const std::uint64_t size = cursor.read_u64();
  std::vector<T> values(size, 0);
  const std::uint64_t nonzero = cursor.read_u64();
  for (std::uint64_t k = 0; k < nonzero; ++k) {
    const std::uint32_t index = cursor.read_u32();
    if (index >= size) {
      throw persist::SnapshotError("incremental state: sparse index out of range");
    }
    values[index] = static_cast<T>(cursor.read_u64());
  }
  return values;
}

// --- hybrid ----------------------------------------------------------------
// Scratch hybrid scans the whole graph first (exact in-degrees), then assigns
// by weight-biased hash of the grouping key.  Incrementally, the in-degree
// table is maintained across batches, and each batch is processed the same
// two-pass way: count ALL of the batch's in-degrees, then assign — so a whole
// graph fed as one batch sees the exact final in-degrees scratch sees.

class HybridIncrementalState final : public IncrementalState {
 public:
  HybridIncrementalState(std::span<const double> weights, std::uint64_t seed,
                         const HybridOptions& options)
      : IncrementalState(seed),
        options_(options),
        cum_(prefix_sum(normalize(weights))) {}

  PartitionerKind kind() const noexcept override { return PartitionerKind::kHybrid; }

  void ensure_vertices(VertexId count) override {
    if (count > in_degree_.size()) in_degree_.resize(count, 0);
  }

  void assign_batch(std::span<const Edge> batch,
                    std::vector<MachineId>& out) override {
    for (const Edge& e : batch) ++in_degree_.at(e.dst);
    for (const Edge& e : batch) {
      const bool high_degree = in_degree_[e.dst] > options_.high_degree_threshold;
      const VertexId key = high_degree ? e.src : e.dst;
      out.push_back(static_cast<MachineId>(weighted_pick(hash_u64(key, seed_), cum_)));
    }
  }

  void retract(const Edge& e, MachineId /*owner*/) override {
    if (e.dst < in_degree_.size() && in_degree_[e.dst] > 0) --in_degree_[e.dst];
  }

  void encode(std::string& out) const override { encode_sparse(out, in_degree_); }

 private:
  void decode_state(persist::Cursor& cursor) override {
    in_degree_ = decode_sparse<EdgeId>(cursor);
  }

  HybridOptions options_;
  std::vector<double> cum_;
  std::vector<EdgeId> in_degree_;
};

// --- hdrf ------------------------------------------------------------------

class HdrfIncrementalState final : public IncrementalState {
 public:
  HdrfIncrementalState(std::span<const double> weights, std::uint64_t seed,
                       const HdrfOptions& options)
      : IncrementalState(seed), options_(options), shares_(normalize(weights)) {
    if (shares_.size() > 64) {
      throw std::invalid_argument("hdrf: at most 64 machines supported");
    }
    load_.assign(shares_.size(), 0.0);
  }

  PartitionerKind kind() const noexcept override { return PartitionerKind::kHdrf; }

  void ensure_vertices(VertexId count) override {
    if (count > replicas_.size()) {
      replicas_.resize(count, 0);
      partial_degree_.resize(count, 0);
    }
  }

  void assign_batch(std::span<const Edge> batch,
                    std::vector<MachineId>& out) override {
    const auto num_machines = static_cast<MachineId>(shares_.size());
    for (const Edge& e : batch) {
      ++partial_degree_.at(e.src);
      ++partial_degree_.at(e.dst);
      const double du = static_cast<double>(partial_degree_[e.src]);
      const double dv = static_cast<double>(partial_degree_[e.dst]);
      const double theta_u = du / (du + dv);
      const double theta_v = 1.0 - theta_u;

      double max_load = 0.0, min_load = std::numeric_limits<double>::infinity();
      for (MachineId p = 0; p < num_machines; ++p) {
        max_load = std::max(max_load, load_[p]);
        min_load = std::min(min_load, load_[p]);
      }

      const std::uint64_t tie_hash = hash_edge(e.src, e.dst, seed_);
      MachineId best = 0;
      double best_score = -std::numeric_limits<double>::infinity();
      std::uint64_t best_tie = 0;
      for (MachineId p = 0; p < num_machines; ++p) {
        double c_rep = 0.0;
        if (replicas_[e.src] & (std::uint64_t{1} << p)) c_rep += 1.0 + (1.0 - theta_u);
        if (replicas_[e.dst] & (std::uint64_t{1} << p)) c_rep += 1.0 + (1.0 - theta_v);
        const double c_bal = (max_load - load_[p]) / (1e-9 + max_load - min_load);
        const double score = c_rep + options_.lambda * c_bal;
        const std::uint64_t tie = hash_u64(tie_hash, p);
        if (score > best_score || (score == best_score && tie < best_tie)) {
          best = p;
          best_score = score;
          best_tie = tie;
        }
      }

      out.push_back(best);
      load_[best] += 1.0 / shares_[best];
      replicas_[e.src] |= std::uint64_t{1} << best;
      replicas_[e.dst] |= std::uint64_t{1} << best;
    }
  }

  void retract(const Edge& e, MachineId owner) override {
    if (owner < load_.size()) {
      load_[owner] = std::max(0.0, load_[owner] - 1.0 / shares_[owner]);
    }
    if (e.src < partial_degree_.size() && partial_degree_[e.src] > 0) {
      --partial_degree_[e.src];
    }
    if (e.dst < partial_degree_.size() && partial_degree_[e.dst] > 0) {
      --partial_degree_[e.dst];
    }
  }

  void encode(std::string& out) const override {
    persist::append_u32(out, static_cast<std::uint32_t>(load_.size()));
    for (const double l : load_) persist::append_f64(out, l);
    encode_sparse(out, replicas_);
    encode_sparse(out, partial_degree_);
  }

 private:
  void decode_state(persist::Cursor& cursor) override {
    const std::uint32_t machines = cursor.read_u32();
    if (machines != load_.size()) {
      throw persist::SnapshotError("hdrf incremental state: machine count mismatch");
    }
    for (double& l : load_) l = cursor.read_f64();
    replicas_ = decode_sparse<std::uint64_t>(cursor);
    partial_degree_ = decode_sparse<EdgeId>(cursor);
    if (replicas_.size() != partial_degree_.size()) {
      throw persist::SnapshotError("hdrf incremental state: vertex array mismatch");
    }
  }

  HdrfOptions options_;
  std::vector<double> shares_;
  std::vector<std::uint64_t> replicas_;
  std::vector<EdgeId> partial_degree_;
  std::vector<double> load_;
};

// --- oblivious -------------------------------------------------------------

class ObliviousIncrementalState final : public IncrementalState {
 public:
  ObliviousIncrementalState(std::span<const double> weights, std::uint64_t seed)
      : IncrementalState(seed), shares_(normalize(weights)) {
    if (shares_.size() > 64) {
      throw std::invalid_argument("oblivious: at most 64 machines supported");
    }
    loads_.assign(shares_.size(), 0);
  }

  PartitionerKind kind() const noexcept override { return PartitionerKind::kOblivious; }

  void ensure_vertices(VertexId count) override {
    if (count > replicas_.size()) {
      replicas_.resize(count, 0);
      assigned_degree_.resize(count, 0);
    }
  }

  void assign_batch(std::span<const Edge> batch,
                    std::vector<MachineId>& out) override {
    for (const Edge& e : batch) {
      const std::uint64_t au = replicas_.at(e.src);
      const std::uint64_t av = replicas_.at(e.dst);
      const std::uint64_t tie_hash = hash_edge(e.src, e.dst, seed_);

      std::uint64_t candidates;
      if ((au & av) != 0) {
        candidates = au & av;
      } else if (au != 0 && av != 0) {
        candidates = assigned_degree_[e.src] >= assigned_degree_[e.dst] ? au : av;
      } else if ((au | av) != 0) {
        candidates = au | av;
      } else {
        candidates = 0;
      }

      MachineId m = best_in_mask(candidates, tie_hash);
      if (candidates != 0) {
        const MachineId least = best_in_mask(0, tie_hash);
        const double cand_load = static_cast<double>(loads_[m]) / shares_[m];
        const double min_load = static_cast<double>(loads_[least]) / shares_[least];
        // Scratch oblivious grows slack with the global stream position;
        // edge_index_ carries that position across batches (monotone — a
        // retraction does not rewind it, so the slack schedule never
        // tightens retroactively).
        const double slack = 8.0 + 0.05 * static_cast<double>(edge_index_ + 1) /
                                       static_cast<double>(shares_.size());
        if (cand_load > min_load + slack) m = least;
      }
      out.push_back(m);
      ++edge_index_;
      ++loads_[m];
      replicas_[e.src] |= std::uint64_t{1} << m;
      replicas_[e.dst] |= std::uint64_t{1} << m;
      ++assigned_degree_[e.src];
      ++assigned_degree_[e.dst];
    }
  }

  void retract(const Edge& e, MachineId owner) override {
    if (owner < loads_.size() && loads_[owner] > 0) --loads_[owner];
    if (e.src < assigned_degree_.size() && assigned_degree_[e.src] > 0) {
      --assigned_degree_[e.src];
    }
    if (e.dst < assigned_degree_.size() && assigned_degree_[e.dst] > 0) {
      --assigned_degree_[e.dst];
    }
  }

  void encode(std::string& out) const override {
    persist::append_u64(out, edge_index_);
    persist::append_u32(out, static_cast<std::uint32_t>(loads_.size()));
    for (const EdgeId l : loads_) persist::append_u64(out, l);
    encode_sparse(out, replicas_);
    encode_sparse(out, assigned_degree_);
  }

 private:
  MachineId best_in_mask(std::uint64_t mask, std::uint64_t tie_hash) const {
    const auto num_machines = static_cast<MachineId>(shares_.size());
    MachineId best = kInvalidMachine;
    double best_score = std::numeric_limits<double>::infinity();
    std::uint64_t best_tie = 0;
    for (MachineId m = 0; m < num_machines; ++m) {
      if (mask != 0 && (mask & (std::uint64_t{1} << m)) == 0) continue;
      const double score = static_cast<double>(loads_[m]) / shares_[m];
      const std::uint64_t tie = hash_u64(tie_hash, m);
      if (score < best_score || (score == best_score && tie < best_tie) ||
          best == kInvalidMachine) {
        best = m;
        best_score = score;
        best_tie = tie;
      }
    }
    return best;
  }

  void decode_state(persist::Cursor& cursor) override {
    edge_index_ = cursor.read_u64();
    const std::uint32_t machines = cursor.read_u32();
    if (machines != loads_.size()) {
      throw persist::SnapshotError("oblivious incremental state: machine count mismatch");
    }
    for (EdgeId& l : loads_) l = cursor.read_u64();
    replicas_ = decode_sparse<std::uint64_t>(cursor);
    assigned_degree_ = decode_sparse<EdgeId>(cursor);
    if (replicas_.size() != assigned_degree_.size()) {
      throw persist::SnapshotError("oblivious incremental state: vertex array mismatch");
    }
  }

  std::vector<double> shares_;
  std::vector<std::uint64_t> replicas_;
  std::vector<EdgeId> assigned_degree_;
  std::vector<EdgeId> loads_;
  std::uint64_t edge_index_ = 0;
};

// --- grid ------------------------------------------------------------------
// Constraints are a pure function of (vertex, seed, shares), so only the
// per-machine loads are real state; constraint masks are re-derived on
// ensure_vertices and never serialized.

class GridIncrementalState final : public IncrementalState {
 public:
  GridIncrementalState(std::span<const double> weights, std::uint64_t seed)
      : IncrementalState(seed), shares_(normalize(weights)) {
    const auto num_machines = static_cast<MachineId>(shares_.size());
    side_ = static_cast<MachineId>(
        std::lround(std::sqrt(static_cast<double>(num_machines))));
    if (side_ * side_ != num_machines) {
      throw std::invalid_argument("grid: machine count must be a perfect square");
    }
    if (num_machines > 64) throw std::invalid_argument("grid: at most 64 machines supported");
    cum_ = prefix_sum(shares_);
    loads_.assign(num_machines, 0);
  }

  PartitionerKind kind() const noexcept override { return PartitionerKind::kGrid; }

  void ensure_vertices(VertexId count) override {
    const auto old = static_cast<VertexId>(constraints_.size());
    if (count <= old) return;
    constraints_.resize(count);
    for (VertexId v = old; v < count; ++v) {
      const auto home = static_cast<MachineId>(weighted_pick(hash_u64(v, seed_), cum_));
      constraints_[v] = constraint_of(home);
    }
  }

  void assign_batch(std::span<const Edge> batch,
                    std::vector<MachineId>& out) override {
    const auto num_machines = static_cast<MachineId>(shares_.size());
    for (const Edge& e : batch) {
      std::uint64_t candidates = constraints_.at(e.src) & constraints_.at(e.dst);
      if (candidates == 0) candidates = constraints_[e.src] | constraints_[e.dst];

      const std::uint64_t tie_hash = hash_edge(e.src, e.dst, seed_);
      MachineId best = kInvalidMachine;
      double best_score = -std::numeric_limits<double>::infinity();
      std::uint64_t best_tie = 0;
      for (MachineId m = 0; m < num_machines; ++m) {
        if ((candidates & (std::uint64_t{1} << m)) == 0) continue;
        const double score = shares_[m] / (1.0 + static_cast<double>(loads_[m]));
        const std::uint64_t tie = hash_u64(tie_hash, m);
        if (best == kInvalidMachine || score > best_score ||
            (score == best_score && tie < best_tie)) {
          best = m;
          best_score = score;
          best_tie = tie;
        }
      }
      out.push_back(best);
      ++loads_[best];
    }
  }

  void retract(const Edge& /*e*/, MachineId owner) override {
    if (owner < loads_.size() && loads_[owner] > 0) --loads_[owner];
  }

  void encode(std::string& out) const override {
    persist::append_u64(out, constraints_.size());
    persist::append_u32(out, static_cast<std::uint32_t>(loads_.size()));
    for (const EdgeId l : loads_) persist::append_u64(out, l);
  }

 private:
  std::uint64_t constraint_of(MachineId home) const {
    const MachineId row = home / side_;
    const MachineId col = home % side_;
    std::uint64_t mask = 0;
    for (MachineId k = 0; k < side_; ++k) {
      mask |= std::uint64_t{1} << (row * side_ + k);
      mask |= std::uint64_t{1} << (k * side_ + col);
    }
    return mask;
  }

  void decode_state(persist::Cursor& cursor) override {
    const std::uint64_t vertices = cursor.read_u64();
    ensure_vertices(static_cast<VertexId>(vertices));
    const std::uint32_t machines = cursor.read_u32();
    if (machines != loads_.size()) {
      throw persist::SnapshotError("grid incremental state: machine count mismatch");
    }
    for (EdgeId& l : loads_) l = cursor.read_u64();
  }

  std::vector<double> shares_;
  std::vector<double> cum_;
  MachineId side_ = 0;
  std::vector<std::uint64_t> constraints_;
  std::vector<EdgeId> loads_;
};

}  // namespace

bool IncrementalState::supports(PartitionerKind kind) noexcept {
  switch (kind) {
    case PartitionerKind::kHybrid:
    case PartitionerKind::kHdrf:
    case PartitionerKind::kOblivious:
    case PartitionerKind::kGrid:
      return true;
    case PartitionerKind::kRandomHash:
    case PartitionerKind::kChunking:
    case PartitionerKind::kGinger:
      return false;
  }
  return false;
}

std::unique_ptr<IncrementalState> IncrementalState::create(
    PartitionerKind kind, std::span<const double> weights, std::uint64_t seed,
    const PartitionerOptions& options) {
  switch (kind) {
    case PartitionerKind::kHybrid:
      return std::make_unique<HybridIncrementalState>(weights, seed, options.hybrid);
    case PartitionerKind::kHdrf:
      return std::make_unique<HdrfIncrementalState>(weights, seed, options.hdrf);
    case PartitionerKind::kOblivious:
      return std::make_unique<ObliviousIncrementalState>(weights, seed);
    case PartitionerKind::kGrid:
      return std::make_unique<GridIncrementalState>(weights, seed);
    default:
      throw std::invalid_argument(std::string("incremental state: unsupported partitioner ") +
                                  to_string(kind));
  }
}

std::unique_ptr<IncrementalState> IncrementalState::decode(
    PartitionerKind kind, persist::Cursor& cursor,
    std::span<const double> weights, std::uint64_t seed,
    const PartitionerOptions& options) {
  auto state = create(kind, weights, seed, options);
  state->decode_state(cursor);
  return state;
}

}  // namespace pglb
