#pragma once
// Capability-share weight vectors fed to the partitioners.
//
// Three policies, mirroring the paper's comparison:
//  - uniform: the default PowerGraph assumption (homogeneous cluster);
//  - thread-count: prior work [5] — share proportional to compute threads;
//  - CCR: this paper — share proportional to profiled capability ratios.

#include <span>
#include <vector>

#include "cluster/cluster.hpp"

namespace pglb {

/// 1/M for every machine.
std::vector<double> uniform_weights(MachineId num_machines);

/// Proportional to MachineSpec::compute_threads (LeBeane et al. [5]).
std::vector<double> thread_count_weights(const Cluster& cluster);

/// Normalise an arbitrary positive capability vector (e.g. CCRs) to shares.
std::vector<double> shares_from_capabilities(std::span<const double> capabilities);

/// max_m (achieved_share[m] / target_share[m]); 1.0 = perfectly balanced
/// against the target.  The straggler under a capability-proportional model
/// is the machine with the largest achieved/target ratio.
double imbalance_factor(std::span<const EdgeId> edge_counts,
                        std::span<const double> target_shares);

}  // namespace pglb
