#pragma once
// Heterogeneity-aware Ginger partitioner (Sec. II-C1; PowerLyra's Fennel-
// style heuristic variant of Hybrid).
//
// High-degree vertices are handled exactly as in Hybrid (in-edges re-cut by
// source hash).  Each low-degree vertex v is instead *reassigned* — together
// with all its in-edges — to the machine i maximising
//
//     score(v, i) = |N(v) ∩ V_i| - b(i)
//
// where |N(v) ∩ V_i| counts v's in-neighbours currently living on i and b(i)
// is a Fennel balance penalty over the vertices and edges already on i.  The
// heterogeneity factor 1/CCR_i scales the penalty so a fast machine "looks
// cheaper" and accumulates a CCR-proportional share (Sec. II-C1's
// score-function modification).

#include "partition/partitioner.hpp"

namespace pglb {

struct GingerOptions {
  EdgeId high_degree_threshold = 100;
  /// Strength of the Fennel balance penalty relative to the locality gain.
  double gamma = 1.5;
};

class GingerPartitioner final : public Partitioner {
 public:
  explicit GingerPartitioner(GingerOptions options = {}) : options_(options) {}

  std::string name() const override { return "ginger"; }

  PartitionAssignment partition(const EdgeList& graph, std::span<const double> weights,
                                std::uint64_t seed) const override;

  const GingerOptions& options() const noexcept { return options_; }

 private:
  GingerOptions options_;
};

}  // namespace pglb
