#include "partition/factory.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "partition/chunking.hpp"
#include "partition/grid.hpp"
#include "partition/oblivious.hpp"
#include "partition/random_hash.hpp"

namespace pglb {

const char* to_string(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kRandomHash: return "random_hash";
    case PartitionerKind::kOblivious: return "oblivious";
    case PartitionerKind::kGrid: return "grid";
    case PartitionerKind::kHybrid: return "hybrid";
    case PartitionerKind::kGinger: return "ginger";
    case PartitionerKind::kChunking: return "chunking";
    case PartitionerKind::kHdrf: return "hdrf";
  }
  return "unknown";
}

PartitionerKind partitioner_from_string(const std::string& name) {
  for (const PartitionerKind kind : extended_partitioner_kinds()) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("partitioner_from_string: unknown partitioner '" + name + "'");
}

std::unique_ptr<Partitioner> make_partitioner(PartitionerKind kind,
                                              const PartitionerOptions& options) {
  switch (kind) {
    case PartitionerKind::kRandomHash: return std::make_unique<RandomHashPartitioner>();
    case PartitionerKind::kOblivious: return std::make_unique<ObliviousPartitioner>();
    case PartitionerKind::kGrid: return std::make_unique<GridPartitioner>();
    case PartitionerKind::kHybrid: return std::make_unique<HybridPartitioner>(options.hybrid);
    case PartitionerKind::kGinger: return std::make_unique<GingerPartitioner>(options.ginger);
    case PartitionerKind::kChunking: return std::make_unique<ChunkingPartitioner>();
    case PartitionerKind::kHdrf: return std::make_unique<HdrfPartitioner>(options.hdrf);
  }
  throw std::invalid_argument("make_partitioner: unknown kind");
}

std::span<const PartitionerKind> all_partitioner_kinds() {
  static constexpr std::array<PartitionerKind, 5> kinds = {
      PartitionerKind::kRandomHash, PartitionerKind::kOblivious, PartitionerKind::kGrid,
      PartitionerKind::kHybrid, PartitionerKind::kGinger};
  return kinds;
}

std::span<const PartitionerKind> extended_partitioner_kinds() {
  static constexpr std::array<PartitionerKind, 7> kinds = {
      PartitionerKind::kRandomHash, PartitionerKind::kOblivious,  PartitionerKind::kGrid,
      PartitionerKind::kHybrid,     PartitionerKind::kGinger,
      PartitionerKind::kChunking,   PartitionerKind::kHdrf};
  return kinds;
}

std::vector<PartitionerKind> applicable_partitioner_kinds(MachineId num_machines) {
  std::vector<PartitionerKind> kinds;
  const auto side =
      static_cast<MachineId>(std::lround(std::sqrt(static_cast<double>(num_machines))));
  const bool square = side * side == num_machines;
  for (const PartitionerKind kind : all_partitioner_kinds()) {
    if (kind == PartitionerKind::kGrid && !square) continue;
    kinds.push_back(kind);
  }
  return kinds;
}

}  // namespace pglb
