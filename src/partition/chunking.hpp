#pragma once
// Contiguous chunking partitioner (extension, not one of the paper's five).
//
// The simplest possible ingress — split the edge stream into contiguous
// ranges sized by the capability weights (GraphChi/X-Stream-style sharding).
// Deterministic, zero-state streaming, and weight-exact by construction, but
// its locality is whatever the input order happens to contain; on hashed or
// generator-ordered streams it replicates similarly to Random Hash.  Useful
// as a control in partitioner ablations.

#include "partition/partitioner.hpp"

namespace pglb {

class ChunkingPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "chunking"; }

  PartitionAssignment partition(const EdgeList& graph, std::span<const double> weights,
                                std::uint64_t seed) const override;
};

}  // namespace pglb
