#include "partition/oblivious.hpp"

#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace pglb {

namespace {

using ReplicaMask = std::uint64_t;
constexpr MachineId kMaxMachines = 64;

/// Least weighted-loaded machine among those set in `mask` (all machines when
/// mask == 0).  Ties break by a per-edge hash for determinism without bias.
MachineId best_in_mask(ReplicaMask mask, std::span<const EdgeId> loads,
                       std::span<const double> shares, std::uint64_t tie_hash) {
  const auto num_machines = static_cast<MachineId>(shares.size());
  MachineId best = kInvalidMachine;
  double best_score = std::numeric_limits<double>::infinity();
  std::uint64_t best_tie = 0;
  for (MachineId m = 0; m < num_machines; ++m) {
    if (mask != 0 && (mask & (ReplicaMask{1} << m)) == 0) continue;
    const double score = static_cast<double>(loads[m]) / shares[m];
    const std::uint64_t tie = hash_u64(tie_hash, m);
    if (score < best_score || (score == best_score && tie < best_tie) ||
        best == kInvalidMachine) {
      best = m;
      best_score = score;
      best_tie = tie;
    }
  }
  return best;
}

}  // namespace

PartitionAssignment ObliviousPartitioner::partition(const EdgeList& graph,
                                                    std::span<const double> weights,
                                                    std::uint64_t seed) const {
  PGLB_TRACE_SPAN("partition.oblivious", "partition");
  const auto shares = normalized_weights(weights);
  if (shares.size() > kMaxMachines) {
    throw std::invalid_argument("oblivious: at most 64 machines supported");
  }

  PartitionAssignment result;
  result.num_machines = static_cast<MachineId>(shares.size());
  result.edge_to_machine.resize(graph.num_edges());

  std::vector<ReplicaMask> replicas(graph.num_vertices(), 0);
  std::vector<EdgeId> assigned_degree(graph.num_vertices(), 0);
  std::vector<EdgeId> loads(shares.size(), 0);

  EdgeId index = 0;
  for (const Edge& e : graph.edges()) {
    const ReplicaMask au = replicas[e.src];
    const ReplicaMask av = replicas[e.dst];
    const std::uint64_t tie_hash = hash_edge(e.src, e.dst, seed);

    ReplicaMask candidates;
    if ((au & av) != 0) {
      // Case 1: shared machine — extend locality, no new mirror at all.
      candidates = au & av;
    } else if (au != 0 && av != 0) {
      // Case 2: both placed but disjoint — favour the machine set of the
      // (apparently) higher-degree endpoint, so the hub gains no new mirror.
      candidates = assigned_degree[e.src] >= assigned_degree[e.dst] ? au : av;
    } else if ((au | av) != 0) {
      // Case 3: exactly one endpoint placed.
      candidates = au | av;
    } else {
      // Case 4: fresh edge — pure weighted load balancing.
      candidates = 0;
    }

    MachineId m = best_in_mask(candidates, loads, shares, tie_hash);
    if (candidates != 0) {
      // Balance guard (PowerGraph keeps greedy placement within a slack of
      // the least-loaded machine): when the locality pick has drifted too far
      // above its weighted share, fall back to pure load balancing.
      const MachineId least = best_in_mask(0, loads, shares, tie_hash);
      const double cand_load = static_cast<double>(loads[m]) / shares[m];
      const double min_load = static_cast<double>(loads[least]) / shares[least];
      const double slack =
          8.0 + 0.05 * static_cast<double>(index + 1) / static_cast<double>(shares.size());
      if (cand_load > min_load + slack) m = least;
    }
    result.edge_to_machine[index++] = m;
    ++loads[m];
    replicas[e.src] |= ReplicaMask{1} << m;
    replicas[e.dst] |= ReplicaMask{1} << m;
    ++assigned_degree[e.src];
    ++assigned_degree[e.dst];
  }
  return result;
}

}  // namespace pglb
