#pragma once
// Heterogeneity-aware Hybrid partitioner (Sec. II-C, from PowerLyra [15]).
//
// Mixed cut in two passes:
//  1. every edge goes to the (weight-biased) hash of its *target* vertex, so
//     low-degree vertices keep all in-edges local — an edge cut, zero mirrors
//     for them;
//  2. vertices whose in-degree exceeds a threshold are re-cut: each of their
//     in-edges moves to the hash of its *source* vertex, bounding a hub's
//     mirrors by the machine count instead of its degree — a vertex cut.
// Heterogeneity awareness replaces both uniform hashes with weighted hashes,
// exactly as in Random Hash.

#include "partition/partitioner.hpp"

namespace pglb {

struct HybridOptions {
  /// In-degree above which a vertex is treated as high-degree (PowerLyra's
  /// default threshold).
  EdgeId high_degree_threshold = 100;
};

class HybridPartitioner final : public Partitioner {
 public:
  explicit HybridPartitioner(HybridOptions options = {}) : options_(options) {}

  std::string name() const override { return "hybrid"; }

  PartitionAssignment partition(const EdgeList& graph, std::span<const double> weights,
                                std::uint64_t seed) const override;

  const HybridOptions& options() const noexcept { return options_; }

 private:
  HybridOptions options_;
};

}  // namespace pglb
