#include "partition/grid.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace pglb {

namespace {

using ConstraintMask = std::uint64_t;

/// Row + column machines of `home` in a side x side grid.
ConstraintMask constraint_of(MachineId home, MachineId side) {
  const MachineId row = home / side;
  const MachineId col = home % side;
  ConstraintMask mask = 0;
  for (MachineId k = 0; k < side; ++k) {
    mask |= ConstraintMask{1} << (row * side + k);  // whole row
    mask |= ConstraintMask{1} << (k * side + col);  // whole column
  }
  return mask;
}

}  // namespace

PartitionAssignment GridPartitioner::partition(const EdgeList& graph,
                                               std::span<const double> weights,
                                               std::uint64_t seed) const {
  PGLB_TRACE_SPAN("partition.grid", "partition");
  const auto shares = normalized_weights(weights);
  const auto num_machines = static_cast<MachineId>(shares.size());
  const auto side =
      static_cast<MachineId>(std::lround(std::sqrt(static_cast<double>(num_machines))));
  if (side * side != num_machines) {
    throw std::invalid_argument("grid: machine count must be a perfect square");
  }
  if (num_machines > 64) throw std::invalid_argument("grid: at most 64 machines supported");

  const auto cum = prefix_sum(shares);

  // Precompute each vertex's constraint set from its weight-biased home.
  std::vector<ConstraintMask> constraints(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto home = static_cast<MachineId>(weighted_pick(hash_u64(v, seed), cum));
    constraints[v] = constraint_of(home, side);
  }

  PartitionAssignment result;
  result.num_machines = num_machines;
  result.edge_to_machine.resize(graph.num_edges());

  std::vector<EdgeId> loads(num_machines, 0);
  EdgeId index = 0;
  for (const Edge& e : graph.edges()) {
    ConstraintMask candidates = constraints[e.src] & constraints[e.dst];
    // The intersection of two row+column crosses is never empty, but guard
    // anyway (e.g. hand-built constraint tables in tests).
    if (candidates == 0) candidates = constraints[e.src] | constraints[e.dst];

    const std::uint64_t tie_hash = hash_edge(e.src, e.dst, seed);
    MachineId best = kInvalidMachine;
    double best_score = -std::numeric_limits<double>::infinity();
    std::uint64_t best_tie = 0;
    for (MachineId m = 0; m < num_machines; ++m) {
      if ((candidates & (ConstraintMask{1} << m)) == 0) continue;
      // CCR-guided score: capability share per unit of already-assigned load.
      const double score = shares[m] / (1.0 + static_cast<double>(loads[m]));
      const std::uint64_t tie = hash_u64(tie_hash, m);
      if (best == kInvalidMachine || score > best_score ||
          (score == best_score && tie < best_tie)) {
        best = m;
        best_score = score;
        best_tie = tie;
      }
    }
    result.edge_to_machine[index++] = best;
    ++loads[best];
  }
  return result;
}

}  // namespace pglb
