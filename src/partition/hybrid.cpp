#include "partition/hybrid.hpp"

#include <string>

#include "obs/trace.hpp"
#include "util/deadline.hpp"
#include "util/hash.hpp"

namespace pglb {

PartitionAssignment HybridPartitioner::partition(const EdgeList& graph,
                                                 std::span<const double> weights,
                                                 std::uint64_t seed) const {
  // Label carries the machine count (bounded label set, interned once per
  // distinct count); the guard keeps the disabled-tracing path allocation-free.
  PGLB_TRACE_SPAN_SARG(
      "partition.hybrid", "partition",
      tracing_enabled()
          ? intern_trace_label("machines=" + std::to_string(weights.size()))
          : nullptr);
  const auto shares = normalized_weights(weights);
  const auto cum = prefix_sum(shares);

  PartitionAssignment result;
  result.num_machines = static_cast<MachineId>(shares.size());
  result.edge_to_machine.resize(graph.num_edges());

  // Pass 1 scans the whole graph, which also yields exact in-degrees "for
  // free" (Sec. II-C1).
  const auto in_degree = graph.in_degrees();

  EdgeId index = 0;
  for (const Edge& e : graph.edges()) {
    // Amortized ambient deadline poll; the assignment produced so far is
    // discarded on cancellation, so determinism is unaffected.
    if ((index & 0x3FFF) == 0) poll_cancellation("partition.hybrid");
    const bool high_degree = in_degree[e.dst] > options_.high_degree_threshold;
    // Low-degree: group with the target (edge cut).  High-degree: scatter by
    // source (vertex cut).  Both use the weight-biased hash.
    const VertexId key = high_degree ? e.src : e.dst;
    result.edge_to_machine[index++] =
        static_cast<MachineId>(weighted_pick(hash_u64(key, seed), cum));
  }
  return result;
}

}  // namespace pglb
