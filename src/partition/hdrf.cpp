#include "partition/hdrf.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "util/deadline.hpp"
#include "util/hash.hpp"

namespace pglb {

PartitionAssignment HdrfPartitioner::partition(const EdgeList& graph,
                                               std::span<const double> weights,
                                               std::uint64_t seed) const {
  PGLB_TRACE_SPAN_SARG(
      "partition.hdrf", "partition",
      tracing_enabled()
          ? intern_trace_label("machines=" + std::to_string(weights.size()))
          : nullptr);
  const auto shares = normalized_weights(weights);
  const auto num_machines = static_cast<MachineId>(shares.size());
  if (num_machines > 64) throw std::invalid_argument("hdrf: at most 64 machines supported");

  PartitionAssignment result;
  result.num_machines = num_machines;
  result.edge_to_machine.resize(graph.num_edges());

  std::vector<std::uint64_t> replicas(graph.num_vertices(), 0);
  std::vector<EdgeId> partial_degree(graph.num_vertices(), 0);
  std::vector<double> load(num_machines, 0.0);  // weighted: edges / share

  EdgeId index = 0;
  for (const Edge& e : graph.edges()) {
    // Amortized ambient deadline poll (see docs/ROBUSTNESS.md).
    if ((index & 0x3FFF) == 0) poll_cancellation("partition.hdrf");
    ++partial_degree[e.src];
    ++partial_degree[e.dst];
    const double du = static_cast<double>(partial_degree[e.src]);
    const double dv = static_cast<double>(partial_degree[e.dst]);
    const double theta_u = du / (du + dv);
    const double theta_v = 1.0 - theta_u;

    double max_load = 0.0, min_load = std::numeric_limits<double>::infinity();
    for (MachineId p = 0; p < num_machines; ++p) {
      max_load = std::max(max_load, load[p]);
      min_load = std::min(min_load, load[p]);
    }

    const std::uint64_t tie_hash = hash_edge(e.src, e.dst, seed);
    MachineId best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    std::uint64_t best_tie = 0;
    for (MachineId p = 0; p < num_machines; ++p) {
      double c_rep = 0.0;
      if (replicas[e.src] & (std::uint64_t{1} << p)) c_rep += 1.0 + (1.0 - theta_u);
      if (replicas[e.dst] & (std::uint64_t{1} << p)) c_rep += 1.0 + (1.0 - theta_v);
      const double c_bal =
          (max_load - load[p]) / (1e-9 + max_load - min_load);
      const double score = c_rep + options_.lambda * c_bal;
      const std::uint64_t tie = hash_u64(tie_hash, p);
      if (score > best_score || (score == best_score && tie < best_tie)) {
        best = p;
        best_score = score;
        best_tie = tie;
      }
    }

    result.edge_to_machine[index++] = best;
    load[best] += 1.0 / shares[best];  // capability-weighted fill
    replicas[e.src] |= std::uint64_t{1} << best;
    replicas[e.dst] |= std::uint64_t{1} << best;
  }
  return result;
}

}  // namespace pglb
