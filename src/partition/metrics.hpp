#pragma once
// Partition-quality metrics: replication factor (the mirror count that drives
// communication, Sec. II-B/Fig. 3) and balance against a target share vector.

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "partition/partitioner.hpp"

namespace pglb {

class ThreadPool;

struct PartitionMetrics {
  std::vector<EdgeId> edges_per_machine;
  std::vector<VertexId> replicas_per_machine;  ///< vertices present (master or mirror)
  /// Average replicas per vertex (1.0 = pure edge cut, no mirrors).
  double replication_factor = 0.0;
  /// max_m(edge share / target share); 1.0 = ideal.
  double weighted_imbalance = 0.0;
  /// max_m(edge share * M); classic unweighted balance for reference.
  double uniform_imbalance = 0.0;
};

/// Metrics are bit-identical at any `pool` thread count (nullptr = the global
/// pool): replica masks accumulate via commutative atomic bit-OR, and the
/// integer popcount pass folds per-shard partials in shard order.
PartitionMetrics compute_partition_metrics(const EdgeList& graph,
                                           const PartitionAssignment& assignment,
                                           std::span<const double> target_shares,
                                           ThreadPool* pool = nullptr);

}  // namespace pglb
