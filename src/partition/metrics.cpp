#include "partition/metrics.hpp"

#include <stdexcept>

#include "partition/weights.hpp"

namespace pglb {

PartitionMetrics compute_partition_metrics(const EdgeList& graph,
                                           const PartitionAssignment& assignment,
                                           std::span<const double> target_shares) {
  if (assignment.edge_to_machine.size() != graph.num_edges()) {
    throw std::invalid_argument("compute_partition_metrics: assignment/graph size mismatch");
  }
  const MachineId num_machines = assignment.num_machines;
  if (target_shares.size() != num_machines) {
    throw std::invalid_argument("compute_partition_metrics: shares size mismatch");
  }

  PartitionMetrics metrics;
  metrics.edges_per_machine = assignment.machine_edge_counts();

  // Replica masks (machine count bounded at 64 across the library).
  if (num_machines > 64) throw std::invalid_argument("compute_partition_metrics: > 64 machines");
  std::vector<std::uint64_t> replicas(graph.num_vertices(), 0);
  EdgeId index = 0;
  for (const Edge& e : graph.edges()) {
    const MachineId m = assignment.edge_to_machine[index++];
    replicas[e.src] |= std::uint64_t{1} << m;
    replicas[e.dst] |= std::uint64_t{1} << m;
  }

  metrics.replicas_per_machine.assign(num_machines, 0);
  std::uint64_t total_replicas = 0;
  VertexId present_vertices = 0;
  for (const std::uint64_t mask : replicas) {
    if (mask == 0) continue;
    ++present_vertices;
    total_replicas += static_cast<std::uint64_t>(__builtin_popcountll(mask));
    for (MachineId m = 0; m < num_machines; ++m) {
      if (mask & (std::uint64_t{1} << m)) ++metrics.replicas_per_machine[m];
    }
  }
  metrics.replication_factor =
      present_vertices == 0
          ? 0.0
          : static_cast<double>(total_replicas) / static_cast<double>(present_vertices);

  metrics.weighted_imbalance = imbalance_factor(metrics.edges_per_machine, target_shares);
  const std::vector<double> uniform(num_machines, 1.0 / static_cast<double>(num_machines));
  metrics.uniform_imbalance = imbalance_factor(metrics.edges_per_machine, uniform);
  return metrics;
}

}  // namespace pglb
