#include "partition/metrics.hpp"

#include <atomic>
#include <stdexcept>

#include "partition/weights.hpp"
#include "util/thread_pool.hpp"

namespace pglb {

namespace {
constexpr std::size_t kEdgeGrain = 1 << 15;
constexpr std::size_t kVertexGrain = 1 << 15;
}  // namespace

PartitionMetrics compute_partition_metrics(const EdgeList& graph,
                                           const PartitionAssignment& assignment,
                                           std::span<const double> target_shares,
                                           ThreadPool* pool) {
  if (assignment.edge_to_machine.size() != graph.num_edges()) {
    throw std::invalid_argument("compute_partition_metrics: assignment/graph size mismatch");
  }
  const MachineId num_machines = assignment.num_machines;
  if (target_shares.size() != num_machines) {
    throw std::invalid_argument("compute_partition_metrics: shares size mismatch");
  }

  PartitionMetrics metrics;
  metrics.edges_per_machine = assignment.machine_edge_counts();

  // Replica masks (machine count bounded at 64 across the library).  Bit-OR
  // is commutative, so concurrent atomic fetch_or from any shard interleaving
  // produces the same final masks as the serial pass.
  if (num_machines > 64) throw std::invalid_argument("compute_partition_metrics: > 64 machines");
  ThreadPool& tp = pool_or_global(pool);
  std::vector<std::uint64_t> replicas(graph.num_vertices(), 0);
  const auto edges = graph.edges();
  parallel_for(tp, edges.size(), kEdgeGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t index = begin; index < end; ++index) {
      const Edge& e = edges[index];
      const std::uint64_t bit = std::uint64_t{1} << assignment.edge_to_machine[index];
      std::atomic_ref<std::uint64_t>(replicas[e.src]).fetch_or(bit, std::memory_order_relaxed);
      std::atomic_ref<std::uint64_t>(replicas[e.dst]).fetch_or(bit, std::memory_order_relaxed);
    }
  });

  // Popcount pass: integer partials per shard, folded in shard order.
  struct Partial {
    std::uint64_t total_replicas = 0;
    VertexId present_vertices = 0;
    std::vector<VertexId> per_machine;
  };
  const std::size_t shards = shard_count(replicas.size(), kVertexGrain);
  std::vector<Partial> partials(shards);
  parallel_for(tp, replicas.size(), kVertexGrain, [&](std::size_t begin, std::size_t end) {
    Partial& part = partials[begin / kVertexGrain];
    part.per_machine.assign(num_machines, 0);
    for (std::size_t v = begin; v < end; ++v) {
      const std::uint64_t mask = replicas[v];
      if (mask == 0) continue;
      ++part.present_vertices;
      part.total_replicas += static_cast<std::uint64_t>(__builtin_popcountll(mask));
      for (MachineId m = 0; m < num_machines; ++m) {
        if (mask & (std::uint64_t{1} << m)) ++part.per_machine[m];
      }
    }
  });

  metrics.replicas_per_machine.assign(num_machines, 0);
  std::uint64_t total_replicas = 0;
  VertexId present_vertices = 0;
  for (const Partial& part : partials) {
    // parallel_for visits every shard even inline, so each partial is filled.
    total_replicas += part.total_replicas;
    present_vertices += part.present_vertices;
    for (MachineId m = 0; m < num_machines; ++m) {
      metrics.replicas_per_machine[m] += part.per_machine[m];
    }
  }
  metrics.replication_factor =
      present_vertices == 0
          ? 0.0
          : static_cast<double>(total_replicas) / static_cast<double>(present_vertices);

  metrics.weighted_imbalance = imbalance_factor(metrics.edges_per_machine, target_shares);
  const std::vector<double> uniform(num_machines, 1.0 / static_cast<double>(num_machines));
  metrics.uniform_imbalance = imbalance_factor(metrics.edges_per_machine, uniform);
  return metrics;
}

}  // namespace pglb
