#pragma once
// Heterogeneity-aware Oblivious partitioner (Sec. II-B2).
//
// PowerGraph's greedy streaming vertex-cut: each edge is placed using the
// history of prior placements (the replica sets of its endpoints) so that
// replication stays low, while balancing machine loads.  The heterogeneity-
// aware extension scores load as edges[m] / weight[m], so a fast machine
// looks "emptier" until it holds its CCR-proportional share.  As the paper
// notes, the locality heuristics mean the final balance only approximately
// follows the weights.

#include "partition/partitioner.hpp"

namespace pglb {

class ObliviousPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "oblivious"; }

  PartitionAssignment partition(const EdgeList& graph, std::span<const double> weights,
                                std::uint64_t seed) const override;
};

}  // namespace pglb
