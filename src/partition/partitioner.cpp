#include "partition/partitioner.hpp"

#include <cmath>
#include <stdexcept>

namespace pglb {

std::vector<EdgeId> PartitionAssignment::machine_edge_counts() const {
  std::vector<EdgeId> counts(num_machines, 0);
  for (const MachineId m : edge_to_machine) {
    if (m >= num_machines) throw std::logic_error("PartitionAssignment: machine id out of range");
    ++counts[m];
  }
  return counts;
}

std::vector<double> Partitioner::normalized_weights(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("partition: weights must be non-empty");
  double total = 0.0;
  for (const double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("partition: weights must be positive and finite");
    }
    total += w;
  }
  std::vector<double> normalized(weights.begin(), weights.end());
  for (double& w : normalized) w /= total;
  return normalized;
}

}  // namespace pglb
