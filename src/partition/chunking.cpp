#include "partition/chunking.hpp"

#include <cmath>

#include "obs/trace.hpp"

namespace pglb {

PartitionAssignment ChunkingPartitioner::partition(const EdgeList& graph,
                                                   std::span<const double> weights,
                                                   std::uint64_t /*seed*/) const {
  PGLB_TRACE_SPAN("partition.chunking", "partition");
  const auto shares = normalized_weights(weights);

  PartitionAssignment result;
  result.num_machines = static_cast<MachineId>(shares.size());
  result.edge_to_machine.resize(graph.num_edges());

  // Machine m owns edges [floor(cum_{m-1} * E), floor(cum_m * E)).
  const double total = static_cast<double>(graph.num_edges());
  EdgeId begin = 0;
  double cumulative = 0.0;
  for (MachineId m = 0; m < result.num_machines; ++m) {
    cumulative += shares[m];
    const auto end =
        m + 1 == result.num_machines
            ? graph.num_edges()
            : static_cast<EdgeId>(std::llround(cumulative * total));
    for (EdgeId i = begin; i < end; ++i) result.edge_to_machine[i] = m;
    begin = end;
  }
  return result;
}

}  // namespace pglb
