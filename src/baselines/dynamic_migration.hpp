#pragma once
// Dynamic load-balancing baseline (Mizan-like, Sec. VI related work).
//
// The paper positions static CCR-guided ingress against systems that *react*
// at runtime: monitor per-superstep times and migrate vertices/edges from
// stragglers to underloaded machines, paying migration traffic.  This
// baseline implements that policy for PageRank (a stable iterative workload,
// the favourable case for reactive balancing):
//
//   after each superstep: move a fraction of the straggler's edges to the
//   machine with the most headroom; migration costs bytes-moved over the
//   interconnect, added to the makespan.
//
// The comparison the paper implies: dynamic balancing converges towards the
// CCR-proportional split eventually, but pays for the bad early supersteps
// plus the migration traffic — a good initial partition makes it unnecessary.

#include "apps/pagerank.hpp"
#include "cluster/cluster.hpp"
#include "engine/distributed_graph.hpp"
#include "partition/partitioner.hpp"

namespace pglb {

struct DynamicMigrationOptions {
  PageRankOptions pagerank;
  /// Fraction of the load gap moved per superstep (0 = static execution).
  double migration_aggressiveness = 0.5;
  /// Bytes shipped per migrated edge (edge data + vertex state + rewiring).
  double bytes_per_migrated_edge = 64.0;
};

struct DynamicMigrationResult {
  ExecReport report;
  std::vector<double> ranks;
  EdgeId edges_migrated = 0;
  double migration_seconds = 0.0;  ///< included in report.makespan_seconds
  /// Final per-machine edge share after all migrations.
  std::vector<double> final_shares;
};

/// Run PageRank from the given initial assignment with reactive migration.
DynamicMigrationResult run_pagerank_with_migration(
    const EdgeList& graph, const PartitionAssignment& initial, const Cluster& cluster,
    const WorkloadTraits& traits, const DynamicMigrationOptions& options = {});

}  // namespace pglb
