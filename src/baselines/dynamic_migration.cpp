#include "baselines/dynamic_migration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "engine/engine.hpp"

namespace pglb {

DynamicMigrationResult run_pagerank_with_migration(
    const EdgeList& graph, const PartitionAssignment& initial, const Cluster& cluster,
    const WorkloadTraits& traits, const DynamicMigrationOptions& options) {
  if (initial.num_machines != cluster.size()) {
    throw std::invalid_argument("run_pagerank_with_migration: machine count mismatch");
  }
  if (options.migration_aggressiveness < 0.0 || options.migration_aggressiveness > 1.0) {
    throw std::invalid_argument(
        "run_pagerank_with_migration: aggressiveness must be in [0, 1]");
  }

  const VertexId n = graph.num_vertices();
  const AppProfile& app = profile_for(AppKind::kPageRank);
  VirtualClusterExecutor exec(cluster, app, traits);
  exec.set_interference(options.pagerank.interference);

  // Mutable ownership state: per-machine edge lists, re-shaped by migration.
  PartitionAssignment current = initial;

  const auto out_degree = graph.out_degrees();
  std::vector<double> rank(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  std::vector<double> acc(n);
  const double base =
      n > 0 ? (1.0 - options.pagerank.damping) / static_cast<double>(n) : 0.0;

  DynamicMigrationResult result;
  double migration_seconds = 0.0;

  for (int it = 0; it < options.pagerank.max_iterations; ++it) {
    // The mirror structure changes as edges move; rebuild per superstep
    // (Mizan's runtime monitoring + re-finalisation cost is folded into the
    // migration traffic charge below).
    const DistributedGraph dg = build_distributed(graph, current);

    std::fill(acc.begin(), acc.end(), 0.0);
    std::vector<double> ops(cluster.size(), 0.0);
    for (MachineId m = 0; m < cluster.size(); ++m) {
      double local_ops = 0.0;
      for (const Edge& e : dg.local_edges(m)) {
        acc[e.dst] += rank[e.src] / static_cast<double>(out_degree[e.src]);
        local_ops += 1.0;
      }
      local_ops += static_cast<double>(dg.masters_on(m));
      ops[m] = local_ops;
    }
    for (VertexId v = 0; v < n; ++v) rank[v] = base + options.pagerank.damping * acc[v];

    exec.record_superstep(ops, mirror_sync_bytes(dg, app));

    // Reactive rebalancing: observe this superstep's compute times and shift
    // edges from the straggler to the most underloaded machine.
    if (options.migration_aggressiveness > 0.0 && it + 1 < options.pagerank.max_iterations) {
      std::vector<double> times(cluster.size());
      for (MachineId m = 0; m < cluster.size(); ++m) {
        // The controller observes *actual* superstep times, including any
        // transient interference — that is the whole point of reacting.
        times[m] = ops[m] / (exec.throughput(m) *
                             options.pagerank.interference.factor(m, it));
      }
      const auto slow = static_cast<MachineId>(
          std::max_element(times.begin(), times.end()) - times.begin());
      const auto fast = static_cast<MachineId>(
          std::min_element(times.begin(), times.end()) - times.begin());
      if (slow != fast && times[slow] > 0.0) {
        const auto counts = current.machine_edge_counts();
        const double imbalance = (times[slow] - times[fast]) / (times[slow] + times[fast]);
        const auto to_move = static_cast<EdgeId>(
            options.migration_aggressiveness * imbalance *
            static_cast<double>(counts[slow]));
        if (to_move > 0) {
          EdgeId moved = 0;
          for (EdgeId i = 0; i < current.edge_to_machine.size() && moved < to_move; ++i) {
            if (current.edge_to_machine[i] == slow) {
              current.edge_to_machine[i] = fast;
              ++moved;
            }
          }
          result.edges_migrated += moved;
          migration_seconds += cluster.network().exchange_seconds(
              traits.work_scale * static_cast<double>(moved) *
              options.bytes_per_migrated_edge);
        }
      }
    }
  }

  result.report = exec.finish("pagerank_dynamic", true);
  result.report.makespan_seconds += migration_seconds;
  result.migration_seconds = migration_seconds;
  result.ranks = std::move(rank);

  const auto counts = current.machine_edge_counts();
  result.final_shares.resize(cluster.size());
  const double total = std::max<double>(1.0, static_cast<double>(graph.num_edges()));
  for (MachineId m = 0; m < cluster.size(); ++m) {
    result.final_shares[m] = static_cast<double>(counts[m]) / total;
  }
  return result;
}

}  // namespace pglb
