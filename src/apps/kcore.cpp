#include "apps/kcore.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "engine/engine.hpp"
#include "graph/builder.hpp"

namespace pglb {

namespace {

/// H-index of a multiset of values, using a counting pass bounded by the
/// candidate cap (a vertex's h-index never exceeds its degree).
std::uint32_t h_index(std::span<const std::uint32_t> values, std::uint32_t cap) {
  if (cap == 0 || values.empty()) return 0;
  std::vector<std::uint32_t> counts(cap + 1, 0);
  for (const std::uint32_t v : values) ++counts[std::min(v, cap)];
  std::uint32_t running = 0;
  for (std::uint32_t h = cap; h > 0; --h) {
    running += counts[h];
    if (running >= h) return h;
  }
  return 0;
}

}  // namespace

KCoreOutput run_kcore(const EdgeList& graph, const DistributedGraph& dg,
                      const Cluster& cluster, const WorkloadTraits& traits,
                      int max_iterations) {
  if (dg.num_machines() != cluster.size()) {
    throw std::invalid_argument("run_kcore: machine count mismatch");
  }
  const VertexId n = dg.num_vertices();
  // Same demand profile class as Connected Components: frontier propagation.
  const AppProfile& app = profile_for(AppKind::kKCore);
  VirtualClusterExecutor exec(cluster, app, traits);
  const auto full_comm = mirror_sync_bytes(dg, app);

  const Csr adj = build_undirected_csr(graph);
  std::vector<std::uint32_t> core(n);
  for (VertexId v = 0; v < n; ++v) {
    core[v] = static_cast<std::uint32_t>(adj.degree(v));
  }

  std::vector<char> changed(n, 1), next_changed(n, 0);
  std::vector<std::uint32_t> scratch;
  double active_fraction = 1.0;
  bool converged = false;

  for (int it = 0; it < max_iterations; ++it) {
    // Gather: machines scan local edges touching vertices whose neighbourhood
    // changed last round.
    std::vector<double> ops(dg.num_machines(), 0.0);
    std::vector<char> recompute(n, 0);
    for (MachineId m = 0; m < dg.num_machines(); ++m) {
      double local_ops = 0.0;
      for (const Edge& e : dg.local_edges(m)) {
        if (!changed[e.src] && !changed[e.dst]) continue;
        local_ops += 1.0;
        if (changed[e.src]) recompute[e.dst] = 1;
        if (changed[e.dst]) recompute[e.src] = 1;
      }
      ops[m] = local_ops;
    }

    // Apply: H-index over the full neighbourhood at the master.
    bool any_change = false;
    for (VertexId v = 0; v < n; ++v) {
      if (!recompute[v]) continue;
      const auto neighbors = adj.neighbors(v);
      scratch.clear();
      scratch.reserve(neighbors.size());
      for (const VertexId u : neighbors) scratch.push_back(core[u]);
      const std::uint32_t next = h_index(scratch, core[v]);
      const MachineId owner = dg.master(v);
      if (owner != kInvalidMachine) {
        ops[owner] += static_cast<double>(neighbors.size());
      }
      if (next < core[v]) {
        core[v] = next;
        next_changed[v] = 1;
        any_change = true;
      }
    }

    std::vector<double> comm(full_comm);
    for (double& c : comm) c *= active_fraction;
    exec.record_superstep(ops, comm);

    if (!any_change) {
      converged = true;
      break;
    }
    std::swap(changed, next_changed);
    std::fill(next_changed.begin(), next_changed.end(), 0);
    VertexId count = 0;
    for (const char c : changed) count += c;
    active_fraction = n > 0 ? static_cast<double>(count) / n : 0.0;
  }

  KCoreOutput out;
  out.degeneracy = core.empty() ? 0 : *std::max_element(core.begin(), core.end());
  out.coreness = std::move(core);
  out.report = exec.finish("kcore", converged);
  return out;
}

std::vector<std::uint32_t> kcore_reference(const EdgeList& graph) {
  const Csr adj = build_undirected_csr(graph);
  const VertexId n = adj.num_vertices();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(adj.degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }

  // Classic O(V + E) peeling: bucket vertices by current degree, repeatedly
  // remove a minimum-degree vertex and decrement its neighbours.
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<char> removed(n, 0);

  std::uint32_t current = 0;
  for (std::uint32_t d = 0; d <= max_degree; ++d) {
    auto& bucket = buckets[d];
    while (!bucket.empty()) {
      const VertexId v = bucket.back();
      bucket.pop_back();
      if (removed[v] || degree[v] != d) continue;  // stale bucket entry
      removed[v] = 1;
      current = std::max(current, d);
      core[v] = current;
      for (const VertexId u : adj.neighbors(v)) {
        if (removed[u] || degree[u] <= d) continue;
        --degree[u];  // stays >= d, so the bucket index is never below d
        buckets[degree[u]].push_back(u);
      }
    }
  }
  return core;
}

}  // namespace pglb
