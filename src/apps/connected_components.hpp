#pragma once
// Distributed Connected Components: synchronous min-label propagation over
// the undirected view of the edge partition, with an active-edge frontier
// (only edges touching a vertex whose label changed last round do work,
// mirroring PowerGraph's delta scheduling).

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "engine/distributed_graph.hpp"
#include "engine/exec_report.hpp"
#include "machine/perf_model.hpp"

namespace pglb {

struct ConnectedComponentsOutput {
  std::vector<VertexId> labels;     ///< smallest vertex id in each component
  std::uint64_t num_components = 0; ///< including isolated singletons
  ExecReport report;
};

ConnectedComponentsOutput run_connected_components(const EdgeList& graph,
                                                   const DistributedGraph& dg,
                                                   const Cluster& cluster,
                                                   const WorkloadTraits& traits,
                                                   int max_iterations = 200);

}  // namespace pglb
