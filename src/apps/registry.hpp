#pragma once
// Uniform entry point over the four applications, used by the profiler and
// the end-to-end flow: prepare the graph for the app, run it distributed,
// return the report plus a small result digest for sanity checks.

#include <string>

#include "apps/coloring.hpp"
#include "apps/connected_components.hpp"
#include "apps/pagerank.hpp"
#include "apps/kcore.hpp"
#include "apps/sssp.hpp"
#include "apps/triangle_count.hpp"

namespace pglb {

/// Per-app ingest transformation (Fig. 7b "load graph file"): Triangle Count
/// requires the canonical undirected simple graph; the others ingest the edge
/// list as-is.
EdgeList prepare_graph_for(AppKind kind, const EdgeList& graph);

struct AppRunResult {
  ExecReport report;
  /// App-specific scalar for sanity checking: PageRank = rank L1 norm,
  /// CC = component count, Coloring = colours used, TC = triangle count,
  /// SSSP = reachable vertex count, k-core = degeneracy.
  double digest = 0.0;
};

/// Run the app on an already-prepared, already-partitioned graph.
AppRunResult run_app(AppKind kind, const EdgeList& prepared_graph,
                     const DistributedGraph& dg, const Cluster& cluster,
                     const WorkloadTraits& traits);

}  // namespace pglb
