#include "apps/connected_components.hpp"

#include <algorithm>
#include <stdexcept>

#include "apps/reference.hpp"
#include "engine/engine.hpp"

namespace pglb {

ConnectedComponentsOutput run_connected_components(const EdgeList& /*graph*/,
                                                   const DistributedGraph& dg,
                                                   const Cluster& cluster,
                                                   const WorkloadTraits& traits,
                                                   int max_iterations) {
  if (dg.num_machines() != cluster.size()) {
    throw std::invalid_argument("run_connected_components: machine count mismatch");
  }
  const VertexId n = dg.num_vertices();
  const AppProfile& app = profile_for(AppKind::kConnectedComponents);
  VirtualClusterExecutor exec(cluster, app, traits);
  const auto full_comm = mirror_sync_bytes(dg, app);

  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;
  std::vector<VertexId> next(label);
  // Frontier: everything active in round 1.
  std::vector<char> active(n, 1), next_active(n, 0);

  bool converged = false;
  double active_fraction = 1.0;
  for (int it = 0; it < max_iterations; ++it) {
    std::vector<double> ops(dg.num_machines(), 0.0);
    bool any_change = false;

    for (MachineId m = 0; m < dg.num_machines(); ++m) {
      double local_ops = 0.0;
      for (const Edge& e : dg.local_edges(m)) {
        if (!active[e.src] && !active[e.dst]) continue;  // frontier skip
        local_ops += 1.0;
        const VertexId lo = std::min(label[e.src], label[e.dst]);
        if (next[e.src] > lo) {
          next[e.src] = lo;
        }
        if (next[e.dst] > lo) {
          next[e.dst] = lo;
        }
      }
      ops[m] = local_ops;
    }

    for (VertexId v = 0; v < n; ++v) {
      if (next[v] < label[v]) {
        label[v] = next[v];
        next_active[v] = 1;
        any_change = true;
      }
    }

    // Mirror traffic shrinks with the frontier.
    std::vector<double> comm(full_comm);
    for (double& c : comm) c *= active_fraction;
    exec.record_superstep(ops, comm);

    if (!any_change) {
      converged = true;
      break;
    }
    std::swap(active, next_active);
    std::fill(next_active.begin(), next_active.end(), 0);
    VertexId active_count = 0;
    for (const char a : active) active_count += a;
    active_fraction = n > 0 ? static_cast<double>(active_count) / n : 0.0;
  }

  ConnectedComponentsOutput out;
  out.num_components = count_components(label);
  out.labels = std::move(label);
  out.report = exec.finish("connected_components", converged);
  return out;
}

}  // namespace pglb
