#pragma once
// Single-node reference implementations used to validate the distributed
// engine: the distributed runs must produce exactly the same answers
// regardless of partitioning (BSP synchronous semantics make results
// partition-invariant).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace pglb {

/// PageRank, Eq. 8 of the paper: PR(u) = (1-d)/N + d * sum PR(v)/L(v).
/// Runs exactly `iterations` synchronous sweeps from the uniform start.
std::vector<double> pagerank_reference(const EdgeList& graph, double damping,
                                       int iterations);

/// Connected components of the undirected view via union-find; returns the
/// smallest vertex id in each component as its label.
std::vector<VertexId> connected_components_reference(const EdgeList& graph);

/// Number of distinct components (isolated vertices are singletons).
std::uint64_t count_components(std::span<const VertexId> labels);

/// Exact triangle count of the undirected simple view.
std::uint64_t triangle_count_reference(const EdgeList& graph);

/// True iff `colors` is a proper colouring of the undirected view
/// (no edge joins equal colours; self-loops ignored).
bool is_proper_coloring(const EdgeList& graph, std::span<const std::uint32_t> colors);

/// Map each directed edge list to its canonical undirected simple form:
/// (min, max) pairs, self-loops dropped, duplicates removed.  Triangle Count
/// ingests this form (PowerGraph likewise finalises TC graphs as undirected).
EdgeList canonical_undirected(const EdgeList& graph);

}  // namespace pglb
