#pragma once
// Distributed greedy graph colouring.
//
// PowerGraph runs Coloring asynchronously; we implement the classic
// Jones-Plassmann parallel schedule (random priorities; a vertex colours
// itself with the smallest colour unused by coloured neighbours once every
// higher-priority neighbour is done).  The rounds execute without BSP
// barriers in the virtual-time model (AppProfile::synchronous == false),
// reproducing the paper's observation that async execution caps the benefit
// of load balancing (Sec. V-B1).

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "engine/distributed_graph.hpp"
#include "engine/exec_report.hpp"
#include "machine/perf_model.hpp"

namespace pglb {

struct ColoringOutput {
  std::vector<std::uint32_t> colors;
  std::uint32_t num_colors = 0;  ///< distinct colours in use (paper's output)
  ExecReport report;
};

ColoringOutput run_coloring(const EdgeList& graph, const DistributedGraph& dg,
                            const Cluster& cluster, const WorkloadTraits& traits,
                            std::uint64_t priority_seed = 99);

}  // namespace pglb
