#include "apps/reference.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "graph/builder.hpp"

namespace pglb {

std::vector<double> pagerank_reference(const EdgeList& graph, double damping,
                                       int iterations) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return {};
  const auto out_degree = graph.out_degrees();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> acc(n);
  const double base = (1.0 - damping) / static_cast<double>(n);
  for (int it = 0; it < iterations; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (const Edge& e : graph.edges()) {
      acc[e.dst] += rank[e.src] / static_cast<double>(out_degree[e.src]);
    }
    for (VertexId v = 0; v < n; ++v) {
      rank[v] = base + damping * acc[v];
    }
  }
  return rank;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(VertexId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }

  VertexId find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Union by smaller root id, so the final label is the component minimum.
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

std::vector<VertexId> connected_components_reference(const EdgeList& graph) {
  UnionFind uf(graph.num_vertices());
  for (const Edge& e : graph.edges()) uf.unite(e.src, e.dst);
  std::vector<VertexId> labels(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) labels[v] = uf.find(v);
  return labels;
}

std::uint64_t count_components(std::span<const VertexId> labels) {
  std::uint64_t count = 0;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == v) ++count;
  }
  return count;
}

std::uint64_t triangle_count_reference(const EdgeList& graph) {
  const Csr adj = build_undirected_csr(graph);  // sorted, deduped
  std::uint64_t triangles = 0;
  // Count each triangle once at its lowest vertex: for u < v adjacent,
  // intersect the portions of N(u), N(v) above v.
  for (VertexId u = 0; u < adj.num_vertices(); ++u) {
    const auto nu = adj.neighbors(u);
    for (const VertexId v : nu) {
      if (v <= u) continue;
      const auto nv = adj.neighbors(v);
      auto iu = std::upper_bound(nu.begin(), nu.end(), v);
      auto iv = std::upper_bound(nv.begin(), nv.end(), v);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++triangles;
          ++iu;
          ++iv;
        }
      }
    }
  }
  return triangles;
}

bool is_proper_coloring(const EdgeList& graph, std::span<const std::uint32_t> colors) {
  if (colors.size() != graph.num_vertices()) return false;
  for (const Edge& e : graph.edges()) {
    if (e.src != e.dst && colors[e.src] == colors[e.dst]) return false;
  }
  return true;
}

EdgeList canonical_undirected(const EdgeList& graph) {
  std::vector<Edge> edges;
  edges.reserve(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) continue;
    edges.push_back(Edge{std::min(e.src, e.dst), std::max(e.src, e.dst)});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return EdgeList(graph.num_vertices(), std::move(edges));
}

}  // namespace pglb
