#include "apps/sssp.hpp"

#include <algorithm>
#include <stdexcept>

#include "engine/engine.hpp"

namespace pglb {

SsspOutput run_sssp(const EdgeList& /*graph*/, const DistributedGraph& dg,
                    const Cluster& cluster, const WorkloadTraits& traits,
                    VertexId source, int max_iterations) {
  if (dg.num_machines() != cluster.size()) {
    throw std::invalid_argument("run_sssp: machine count mismatch");
  }
  const VertexId n = dg.num_vertices();
  if (source >= n) throw std::out_of_range("run_sssp: source outside vertex space");

  const AppProfile& app = profile_for(AppKind::kSssp);
  VirtualClusterExecutor exec(cluster, app, traits);
  const auto full_comm = mirror_sync_bytes(dg, app);

  std::vector<std::uint32_t> dist(n, kUnreachable);
  dist[source] = 0;
  std::vector<char> active(n, 0), next_active(n, 0);
  active[source] = 1;
  double active_fraction = n > 0 ? 1.0 / n : 0.0;

  bool converged = false;
  for (int it = 0; it < max_iterations; ++it) {
    std::vector<double> ops(dg.num_machines(), 0.0);
    bool any_change = false;

    for (MachineId m = 0; m < dg.num_machines(); ++m) {
      double local_ops = 0.0;
      for (const Edge& e : dg.local_edges(m)) {
        if (!active[e.src] && !active[e.dst]) continue;
        local_ops += 1.0;
        // Undirected relaxation with unit weights.
        if (dist[e.src] != kUnreachable && dist[e.src] + 1 < dist[e.dst]) {
          dist[e.dst] = dist[e.src] + 1;
          next_active[e.dst] = 1;
          any_change = true;
        }
        if (dist[e.dst] != kUnreachable && dist[e.dst] + 1 < dist[e.src]) {
          dist[e.src] = dist[e.dst] + 1;
          next_active[e.src] = 1;
          any_change = true;
        }
      }
      ops[m] = local_ops;
    }

    std::vector<double> comm(full_comm);
    for (double& c : comm) c *= active_fraction;
    exec.record_superstep(ops, comm);

    if (!any_change) {
      converged = true;
      break;
    }
    std::swap(active, next_active);
    std::fill(next_active.begin(), next_active.end(), 0);
    VertexId count = 0;
    for (const char a : active) count += a;
    active_fraction = n > 0 ? static_cast<double>(count) / n : 0.0;
  }

  SsspOutput out;
  for (const std::uint32_t d : dist) {
    if (d != kUnreachable) ++out.reached;
  }
  out.distance = std::move(dist);
  out.report = exec.finish("sssp", converged);
  return out;
}

}  // namespace pglb
