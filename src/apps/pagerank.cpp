#include "apps/pagerank.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "engine/engine.hpp"

namespace pglb {

PageRankOutput run_pagerank(const EdgeList& graph, const DistributedGraph& dg,
                            const Cluster& cluster, const WorkloadTraits& traits,
                            const PageRankOptions& options) {
  if (dg.num_machines() != cluster.size()) {
    throw std::invalid_argument("run_pagerank: cluster/partition machine count mismatch");
  }
  const VertexId n = dg.num_vertices();
  const AppProfile& app = profile_for(AppKind::kPageRank);
  VirtualClusterExecutor exec(cluster, app, traits);
  exec.set_interference(options.interference);

  const auto out_degree = graph.out_degrees();
  std::vector<double> rank(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  std::vector<double> acc(n);
  const double base = n > 0 ? (1.0 - options.damping) / static_cast<double>(n) : 0.0;
  const auto comm = mirror_sync_bytes(dg, app);

  bool converged = false;
  for (int it = 0; it < options.max_iterations; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0);
    std::vector<double> ops(dg.num_machines(), 0.0);

    // Gather: each machine streams its local edges.
    for (MachineId m = 0; m < dg.num_machines(); ++m) {
      double local_ops = 0.0;
      for (const Edge& e : dg.local_edges(m)) {
        acc[e.dst] += rank[e.src] / static_cast<double>(out_degree[e.src]);
        local_ops += 1.0;
      }
      // Apply runs on each machine's master vertices.
      local_ops += static_cast<double>(dg.masters_on(m));
      ops[m] = local_ops;
    }

    // Apply: update every vertex (masters own the write; mirrors get the
    // value through the costed scatter).
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      const double next = base + options.damping * acc[v];
      delta += std::abs(next - rank[v]);
      rank[v] = next;
    }

    exec.record_superstep(ops, comm);
    if (options.tolerance > 0.0 && delta < options.tolerance) {
      converged = true;
      break;
    }
  }

  PageRankOutput out;
  out.ranks = std::move(rank);
  out.report = exec.finish("pagerank", converged || options.tolerance == 0.0);
  return out;
}

}  // namespace pglb
