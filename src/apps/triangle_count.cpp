#include "apps/triangle_count.hpp"

#include <stdexcept>

#include "engine/engine.hpp"
#include "graph/builder.hpp"

namespace pglb {

TriangleCountOutput run_triangle_count(const EdgeList& graph, const DistributedGraph& dg,
                                       const Cluster& cluster,
                                       const WorkloadTraits& traits) {
  if (dg.num_machines() != cluster.size()) {
    throw std::invalid_argument("run_triangle_count: machine count mismatch");
  }
  for (const Edge& e : graph.edges()) {
    if (e.src >= e.dst) {
      throw std::invalid_argument(
          "run_triangle_count: input must be canonical undirected (src < dst); "
          "run canonical_undirected() first");
    }
  }

  const AppProfile& app = profile_for(AppKind::kTriangleCount);
  VirtualClusterExecutor exec(cluster, app, traits);

  Csr adj = build_undirected_csr(graph);  // sorted adjacency for merges

  TriangleCountOutput out;
  out.per_vertex.assign(dg.num_vertices(), 0);

  std::vector<double> ops(dg.num_machines(), 0.0);
  std::uint64_t edge_count_sum = 0;  // sum over edges of |N(u) ∩ N(v)| = 3 * triangles

  for (MachineId m = 0; m < dg.num_machines(); ++m) {
    double local_ops = 0.0;
    for (const Edge& e : dg.local_edges(m)) {
      const auto nu = adj.neighbors(e.src);
      const auto nv = adj.neighbors(e.dst);
      std::uint64_t common = 0;
      std::size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        local_ops += 1.0;  // every merge step is real work
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nv[j] < nu[i]) {
          ++j;
        } else {
          ++common;
          ++i;
          ++j;
        }
      }
      edge_count_sum += common;
      // Each common neighbour w forms a triangle {u, v, w}; credit the edge's
      // endpoints now (w is credited when its own edges are processed).
      out.per_vertex[e.src] += common;
      out.per_vertex[e.dst] += common;
    }
    ops[m] = local_ops;
  }

  // Gather ships neighbour lists to mirrors: scale the mirror message size by
  // the mean degree.
  const double mean_degree =
      dg.num_vertices() > 0
          ? static_cast<double>(adj.num_edges()) / static_cast<double>(dg.num_vertices())
          : 0.0;
  std::vector<double> comm = mirror_sync_bytes(dg, app);
  for (double& c : comm) c *= 1.0 + mean_degree / 4.0;

  exec.record_superstep(ops, comm);

  // Each triangle at v was credited once per incident edge (two of them).
  for (std::uint64_t& t : out.per_vertex) t /= 2;
  out.total_triangles = edge_count_sum / 3;
  out.report = exec.finish("triangle_count", true);
  return out;
}

}  // namespace pglb
