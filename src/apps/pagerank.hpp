#pragma once
// Distributed PageRank (Eq. 8): synchronous GAS.  Gather sums incoming
// rank/out-degree over each machine's local edges; apply updates masters;
// scatter synchronises mirrors (costed, the values live in shared arrays in
// this single-process simulation).

#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/interference.hpp"
#include "engine/distributed_graph.hpp"
#include "engine/exec_report.hpp"
#include "machine/perf_model.hpp"

namespace pglb {

struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 10;
  /// Stop early when the L1 rank change drops below this (0 = fixed count).
  double tolerance = 0.0;
  /// Optional transient-slowdown schedule (multi-tenant interference).
  InterferenceSchedule interference;
};

struct PageRankOutput {
  std::vector<double> ranks;
  ExecReport report;
};

PageRankOutput run_pagerank(const EdgeList& graph, const DistributedGraph& dg,
                            const Cluster& cluster, const WorkloadTraits& traits,
                            const PageRankOptions& options = {});

}  // namespace pglb
