#include "apps/coloring.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "engine/engine.hpp"
#include "graph/builder.hpp"
#include "util/hash.hpp"

namespace pglb {

namespace {

constexpr std::uint32_t kUncolored = 0xffffffffu;

/// Priority order: hash first, vertex id as tiebreak — a random permutation.
bool higher_priority(VertexId a, VertexId b, std::uint64_t seed) {
  const std::uint64_t ha = hash_u64(a, seed);
  const std::uint64_t hb = hash_u64(b, seed);
  return ha != hb ? ha > hb : a > b;
}

}  // namespace

ColoringOutput run_coloring(const EdgeList& graph, const DistributedGraph& dg,
                            const Cluster& cluster, const WorkloadTraits& traits,
                            std::uint64_t priority_seed) {
  if (dg.num_machines() != cluster.size()) {
    throw std::invalid_argument("run_coloring: machine count mismatch");
  }
  const VertexId n = dg.num_vertices();
  const AppProfile& app = profile_for(AppKind::kColoring);
  VirtualClusterExecutor exec(cluster, app, traits);
  const auto full_comm = mirror_sync_bytes(dg, app);

  // Full undirected adjacency for the apply-side mex computation.
  const Csr adj = build_undirected_csr(graph);

  std::vector<std::uint32_t> color(n, kUncolored);
  std::vector<char> ready(n, 0);
  VertexId uncolored = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (adj.degree(v) == 0) {
      color[v] = 0;  // isolated vertices colour trivially
    } else {
      ++uncolored;
    }
  }

  std::vector<std::uint32_t> forbidden;  // scratch for mex
  int rounds = 0;
  const int max_rounds = 10'000;
  double frontier_fraction = 1.0;
  while (uncolored > 0 && rounds < max_rounds) {
    ++rounds;
    std::vector<double> ops(dg.num_machines(), 0.0);

    // Gather phase: each machine scans its local edges to find which of its
    // uncoloured vertices are blocked by an uncoloured higher-priority
    // neighbour.
    std::fill(ready.begin(), ready.end(), 1);
    for (MachineId m = 0; m < dg.num_machines(); ++m) {
      double local_ops = 0.0;
      for (const Edge& e : dg.local_edges(m)) {
        if (e.src == e.dst) continue;
        const bool src_uncolored = color[e.src] == kUncolored;
        const bool dst_uncolored = color[e.dst] == kUncolored;
        if (!src_uncolored && !dst_uncolored) continue;
        local_ops += 1.0;
        if (src_uncolored && dst_uncolored) {
          if (higher_priority(e.dst, e.src, priority_seed)) {
            ready[e.src] = 0;
          } else {
            ready[e.dst] = 0;
          }
        }
      }
      ops[m] = local_ops;
    }

    // Apply phase: every unblocked uncoloured vertex takes the smallest
    // colour absent from its (coloured) neighbourhood.  Work lands on the
    // master machine.
    for (VertexId v = 0; v < n; ++v) {
      if (color[v] != kUncolored || !ready[v]) continue;
      forbidden.clear();
      for (const VertexId u : adj.neighbors(v)) {
        if (color[u] != kUncolored) forbidden.push_back(color[u]);
      }
      std::sort(forbidden.begin(), forbidden.end());
      std::uint32_t mex = 0;
      for (const std::uint32_t c : forbidden) {
        if (c == mex) {
          ++mex;
        } else if (c > mex) {
          break;
        }
      }
      color[v] = mex;
      --uncolored;
      const MachineId owner = dg.master(v);
      if (owner != kInvalidMachine) {
        ops[owner] += static_cast<double>(adj.degree(v));
      }
    }

    std::vector<double> comm(full_comm);
    for (double& c : comm) c *= frontier_fraction;
    exec.record_superstep(ops, comm);
    frontier_fraction = n > 0 ? static_cast<double>(uncolored) / n : 0.0;
  }

  ColoringOutput out;
  std::unordered_set<std::uint32_t> distinct(color.begin(), color.end());
  distinct.erase(kUncolored);
  out.num_colors = static_cast<std::uint32_t>(distinct.size());
  out.colors = std::move(color);
  out.report = exec.finish("coloring", uncolored == 0);
  return out;
}

}  // namespace pglb
