#include "apps/registry.hpp"

#include <stdexcept>

#include "apps/reference.hpp"
#include "util/math.hpp"

namespace pglb {

EdgeList prepare_graph_for(AppKind kind, const EdgeList& graph) {
  if (kind == AppKind::kTriangleCount) return canonical_undirected(graph);
  return graph;
}

AppRunResult run_app(AppKind kind, const EdgeList& prepared_graph,
                     const DistributedGraph& dg, const Cluster& cluster,
                     const WorkloadTraits& traits) {
  AppRunResult result;
  switch (kind) {
    case AppKind::kPageRank: {
      auto out = run_pagerank(prepared_graph, dg, cluster, traits);
      KahanSum total;
      for (const double r : out.ranks) total.add(r);
      result.digest = total.value();
      result.report = std::move(out.report);
      return result;
    }
    case AppKind::kColoring: {
      auto out = run_coloring(prepared_graph, dg, cluster, traits);
      result.digest = static_cast<double>(out.num_colors);
      result.report = std::move(out.report);
      return result;
    }
    case AppKind::kConnectedComponents: {
      auto out = run_connected_components(prepared_graph, dg, cluster, traits);
      result.digest = static_cast<double>(out.num_components);
      result.report = std::move(out.report);
      return result;
    }
    case AppKind::kTriangleCount: {
      auto out = run_triangle_count(prepared_graph, dg, cluster, traits);
      result.digest = static_cast<double>(out.total_triangles);
      result.report = std::move(out.report);
      return result;
    }
    case AppKind::kKCore: {
      auto out = run_kcore(prepared_graph, dg, cluster, traits);
      result.digest = static_cast<double>(out.degeneracy);
      result.report = std::move(out.report);
      return result;
    }
    case AppKind::kSssp: {
      auto out = run_sssp(prepared_graph, dg, cluster, traits);
      result.digest = static_cast<double>(out.reached);
      result.report = std::move(out.report);
      return result;
    }
  }
  throw std::invalid_argument("run_app: unknown AppKind");
}

}  // namespace pglb
