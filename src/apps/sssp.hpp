#pragma once
// Distributed single-source shortest paths (unit weights: BFS hop distance).
//
// Not one of the paper's four evaluation apps — included as the
// "special-purpose application" of Sec. III-B: any new app is profiled on the
// proxy suite once and immediately participates in CCR-guided partitioning.
// Frontier-based label propagation over the undirected view, like CC.

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "engine/distributed_graph.hpp"
#include "engine/exec_report.hpp"
#include "machine/perf_model.hpp"

namespace pglb {

inline constexpr std::uint32_t kUnreachable = 0xffffffffu;

struct SsspOutput {
  std::vector<std::uint32_t> distance;  ///< hops from source; kUnreachable if none
  VertexId reached = 0;                 ///< vertices with finite distance
  ExecReport report;
};

SsspOutput run_sssp(const EdgeList& graph, const DistributedGraph& dg,
                    const Cluster& cluster, const WorkloadTraits& traits,
                    VertexId source = 0, int max_iterations = 10'000);

}  // namespace pglb
