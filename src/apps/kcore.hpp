#pragma once
// Distributed k-core decomposition (second extension app).
//
// Computes every vertex's coreness over the undirected view using the
// h-index iteration of Lu et al.: start from core(v) = degree(v) and
// repeatedly set core(v) to the H-index of its neighbours' current values —
// the largest h such that at least h neighbours have core >= h.  The
// iteration converges monotonically (from above) to the exact coreness and
// maps onto GAS supersteps like Connected Components: gather neighbour
// values, apply the H-index at the master, scatter to mirrors.

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "engine/distributed_graph.hpp"
#include "engine/exec_report.hpp"
#include "machine/perf_model.hpp"

namespace pglb {

struct KCoreOutput {
  std::vector<std::uint32_t> coreness;
  std::uint32_t degeneracy = 0;  ///< max coreness (the graph's degeneracy)
  ExecReport report;
};

KCoreOutput run_kcore(const EdgeList& graph, const DistributedGraph& dg,
                      const Cluster& cluster, const WorkloadTraits& traits,
                      int max_iterations = 10'000);

/// Exact single-node reference: classic peeling with a bucket queue.
std::vector<std::uint32_t> kcore_reference(const EdgeList& graph);

}  // namespace pglb
