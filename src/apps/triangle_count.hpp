#pragma once
// Distributed Triangle Count.  Each machine intersects the neighbour lists of
// its local edges' endpoints (sorted-merge, counting real work steps); the
// per-edge counts sum to 3x the triangle total.  Ingests the canonical
// undirected simple graph (see canonical_undirected()); the gather phase's
// neighbour-list shipping makes this the most communication-heavy app.

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "engine/distributed_graph.hpp"
#include "engine/exec_report.hpp"
#include "machine/perf_model.hpp"

namespace pglb {

struct TriangleCountOutput {
  std::uint64_t total_triangles = 0;
  /// Triangles incident to each vertex (the paper's per-vertex output).
  std::vector<std::uint64_t> per_vertex;
  ExecReport report;
};

/// `graph` must be canonical undirected (src < dst, no duplicates); throws
/// std::invalid_argument otherwise.
TriangleCountOutput run_triangle_count(const EdgeList& graph, const DistributedGraph& dg,
                                       const Cluster& cluster, const WorkloadTraits& traits);

}  // namespace pglb
