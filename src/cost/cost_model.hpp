#pragma once
// Cost-efficiency projection (Sec. V-C, Fig. 11): profile the synthetic
// proxies on each candidate machine and derive cost-per-task = runtime hours
// x hourly rate, without ever renting the full menu of instances.

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/proxy_suite.hpp"
#include "machine/app_profile.hpp"
#include "machine/machine_spec.hpp"

namespace pglb {

struct CostPoint {
  std::string machine;
  AppKind app = AppKind::kPageRank;
  double runtime_seconds = 0.0;   ///< profiled proxy runtime (virtual)
  double speedup = 0.0;           ///< vs the baseline machine
  double cost_per_task = 0.0;     ///< USD: runtime_hours * hourly rate
  double relative_cost = 0.0;     ///< vs the most expensive machine for this app
};

/// Evaluate every machine on every app using the proxy nearest `alpha`
/// (default: the middle proxy).  `baseline` names the speedup reference
/// (the paper uses the smallest machine, c4.xlarge).
std::vector<CostPoint> cost_efficiency(std::span<const MachineSpec> machines,
                                       std::span<const AppKind> apps,
                                       const ProxySuite& suite,
                                       const std::string& baseline,
                                       double alpha = 2.1);

/// Cost of running a job on a whole (rented) cluster: every machine bills
/// for the full makespan whether busy or idle — Sec. V-C's "cost efficiency
/// of formed clusters".  Local (rate 0) machines contribute nothing.
double cluster_cost_per_task(const Cluster& cluster, double makespan_seconds);

}  // namespace pglb
