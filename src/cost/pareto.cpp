#include "cost/pareto.hpp"

namespace pglb {

bool dominates(const CostPoint& a, const CostPoint& b) {
  const bool no_worse = a.speedup >= b.speedup && a.cost_per_task <= b.cost_per_task;
  const bool strictly_better = a.speedup > b.speedup || a.cost_per_task < b.cost_per_task;
  return no_worse && strictly_better;
}

std::vector<std::size_t> pareto_frontier(std::span<const CostPoint> points) {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

}  // namespace pglb
