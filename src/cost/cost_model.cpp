#include "cost/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/profiler.hpp"

namespace pglb {

std::vector<CostPoint> cost_efficiency(std::span<const MachineSpec> machines,
                                       std::span<const AppKind> apps,
                                       const ProxySuite& suite,
                                       const std::string& baseline, double alpha) {
  if (machines.empty() || apps.empty()) {
    throw std::invalid_argument("cost_efficiency: machines and apps must be non-empty");
  }
  const ProxySuite::Proxy& proxy = suite.nearest(alpha);

  std::vector<CostPoint> points;
  points.reserve(machines.size() * apps.size());
  for (const AppKind app : apps) {
    std::vector<double> runtimes(machines.size());
    for (std::size_t j = 0; j < machines.size(); ++j) {
      runtimes[j] = profile_single_machine(machines[j], app, proxy.graph, suite.scale());
    }
    double baseline_time = 0.0;
    for (std::size_t j = 0; j < machines.size(); ++j) {
      if (machines[j].name == baseline) baseline_time = runtimes[j];
    }
    if (baseline_time == 0.0) {
      throw std::invalid_argument("cost_efficiency: baseline machine '" + baseline +
                                  "' not in list");
    }

    double max_cost = 0.0;
    std::vector<CostPoint> app_points;
    for (std::size_t j = 0; j < machines.size(); ++j) {
      CostPoint p;
      p.machine = machines[j].name;
      p.app = app;
      p.runtime_seconds = runtimes[j];
      p.speedup = baseline_time / runtimes[j];
      p.cost_per_task = runtimes[j] / 3600.0 * machines[j].cost_per_hour;
      max_cost = std::max(max_cost, p.cost_per_task);
      app_points.push_back(std::move(p));
    }
    for (CostPoint& p : app_points) {
      p.relative_cost = max_cost > 0.0 ? p.cost_per_task / max_cost : 0.0;
      points.push_back(std::move(p));
    }
  }
  return points;
}

double cluster_cost_per_task(const Cluster& cluster, double makespan_seconds) {
  if (makespan_seconds < 0.0) {
    throw std::invalid_argument("cluster_cost_per_task: negative makespan");
  }
  double rate_per_hour = 0.0;
  for (const MachineSpec& m : cluster.machines()) rate_per_hour += m.cost_per_hour;
  return makespan_seconds / 3600.0 * rate_per_hour;
}

}  // namespace pglb
