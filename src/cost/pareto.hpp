#pragma once
// Pareto frontier over (speedup up, cost down) — the non-dominated machines a
// cloud user should shortlist (Fig. 11's takeaway: 2xlarge/4xlarge dominate
// 8xlarge for graph work).

#include <cstddef>
#include <span>
#include <vector>

#include "cost/cost_model.hpp"

namespace pglb {

/// Indices of points not dominated by any other: no other point has
/// >= speedup AND <= cost with at least one strict.  Output preserves input
/// order.
std::vector<std::size_t> pareto_frontier(std::span<const CostPoint> points);

/// True iff `a` dominates `b`.
bool dominates(const CostPoint& a, const CostPoint& b);

}  // namespace pglb
