#include "util/cli.hpp"

#include <stdexcept>

#include "util/parse.hpp"

namespace pglb {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> Cli::raw(const std::string& key) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Cli::has(const std::string& key) const { return raw(key).has_value(); }

std::string Cli::get_string(const std::string& key, std::string fallback) const {
  const auto v = raw(key);
  return v ? *v : std::move(fallback);
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  const auto parsed = parse_int(*v);
  if (!parsed) {
    throw std::invalid_argument("--" + key + " expects an integer, got '" + *v + "'");
  }
  return *parsed;
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  const auto parsed = parse_double(*v);
  if (!parsed) {
    throw std::invalid_argument("--" + key + " expects a number, got '" + *v + "'");
  }
  return *parsed;
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto v = raw(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("--" + key + " expects a boolean, got '" + *v + "'");
}

std::vector<std::string> Cli::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, _] : values_) {
    if (!queried_.contains(key)) unused.push_back(key);
  }
  return unused;
}

}  // namespace pglb
