#pragma once
// Wall-clock stopwatch for measuring *host* time (generator throughput,
// partitioner throughput).  Virtual cluster time is tracked separately by the
// engine; never mix the two.

#include <chrono>

namespace pglb {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed host seconds since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pglb
