#include "util/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/registry.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

namespace pglb {

namespace {

[[noreturn]] void bad_spec(const std::string& fragment, const std::string& why) {
  throw std::invalid_argument("fault spec '" + fragment + "': " + why);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::uint64_t parse_u64_or(const std::string& fragment, const std::string& text) {
  const auto value = parse_int(text);
  if (!value || *value < 0) bad_spec(fragment, "'" + text + "' is not a count");
  return static_cast<std::uint64_t>(*value);
}

void parse_action(const std::string& fragment, const std::string& text, FaultSpec& spec) {
  const auto parts = split(text, ':');
  if (parts[0] == "fail") {
    if (parts.size() != 1) bad_spec(fragment, "fail takes no argument");
    spec.action = FaultSpec::Action::kFail;
  } else if (parts[0] == "stall") {
    if (parts.size() != 2) bad_spec(fragment, "stall needs ':<milliseconds>'");
    spec.action = FaultSpec::Action::kStall;
    spec.stall_ms = parse_u64_or(fragment, parts[1]);
  } else {
    bad_spec(fragment, "unknown action '" + parts[0] + "' (fail, stall:<ms>)");
  }
}

void parse_trigger(const std::string& fragment, const std::string& text,
                   FaultSpec& spec) {
  const auto parts = split(text, ':');
  if (parts[0] == "always") {
    if (parts.size() != 1) bad_spec(fragment, "always takes no argument");
    spec.trigger = FaultSpec::Trigger::kAlways;
  } else if (parts[0] == "nth") {
    if (parts.size() != 2) bad_spec(fragment, "nth needs ':<n>'");
    spec.trigger = FaultSpec::Trigger::kNth;
    spec.nth = parse_u64_or(fragment, parts[1]);
    if (spec.nth == 0) bad_spec(fragment, "nth is 1-based");
  } else if (parts[0] == "prob") {
    if (parts.size() != 2 && parts.size() != 3) {
      bad_spec(fragment, "prob needs ':<p>[:<seed>]'");
    }
    spec.trigger = FaultSpec::Trigger::kProb;
    const auto p = parse_double(parts[1]);
    if (!p || !(*p >= 0.0 && *p <= 1.0)) {
      bad_spec(fragment, "probability must be in [0, 1]");
    }
    spec.probability = *p;
    if (parts.size() == 3) spec.seed = parse_u64_or(fragment, parts[2]);
  } else {
    bad_spec(fragment, "unknown trigger '" + parts[0] +
                           "' (always, nth:<n>, prob:<p>[:<seed>])");
  }
}

}  // namespace

std::vector<FaultSpec> parse_fault_specs(const std::string& text) {
  std::vector<FaultSpec> specs;
  for (const std::string& fragment : split(text, ';')) {
    if (fragment.empty()) continue;
    const std::size_t eq = fragment.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_spec(fragment, "expected 'site=action[@trigger]'");
    }
    FaultSpec spec;
    spec.site = fragment.substr(0, eq);
    const std::string behavior = fragment.substr(eq + 1);
    const std::size_t at = behavior.find('@');
    parse_action(fragment, behavior.substr(0, at), spec);
    if (at != std::string::npos) parse_trigger(fragment, behavior.substr(at + 1), spec);
    specs.push_back(std::move(spec));
  }
  return specs;
}

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry* registry = [] {
    auto* r = new FaultRegistry();
    if (const char* env = std::getenv("PGLB_FAULTS")) {
      if (env[0] != '\0') r->configure(std::string(env));
    }
    return r;
  }();
  return *registry;
}

void FaultRegistry::configure(std::vector<FaultSpec> specs) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  for (FaultSpec& spec : specs) {
    Armed armed;
    armed.rng_state = splitmix64(spec.seed);
    armed.spec = std::move(spec);
    sites_[armed.spec.site] = std::move(armed);
  }
  enabled_.store(!sites_.empty(), std::memory_order_relaxed);
}

void FaultRegistry::arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Armed armed;
  armed.rng_state = splitmix64(spec.seed);
  armed.spec = std::move(spec);
  sites_[armed.spec.site] = std::move(armed);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultRegistry::on_hit(std::string_view site) {
  FaultSpec::Action action = FaultSpec::Action::kFail;
  std::uint64_t stall_ms = 0;
  std::string site_name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sites_.find(std::string(site));
    if (it == sites_.end()) return;
    Armed& armed = it->second;
    ++armed.hits;
    bool fires = false;
    switch (armed.spec.trigger) {
      case FaultSpec::Trigger::kAlways: fires = true; break;
      case FaultSpec::Trigger::kNth: fires = armed.hits == armed.spec.nth; break;
      case FaultSpec::Trigger::kProb: {
        armed.rng_state = splitmix64(armed.rng_state);
        const double draw =
            static_cast<double>(armed.rng_state >> 11) * 0x1.0p-53;
        fires = draw < armed.spec.probability;
        break;
      }
    }
    if (!fires) return;
    ++armed.fired;
    action = armed.spec.action;
    stall_ms = armed.spec.stall_ms;
    site_name = armed.spec.site;
  }
  // Count + act outside the lock: a stall must not serialize other sites.
  global_registry().count("fault.injected");
  if (action == FaultSpec::Action::kStall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    return;
  }
  throw FaultInjectedError(site_name);
}

std::uint64_t FaultRegistry::hit_count(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(std::string(site));
  return it != sites_.end() ? it->second.hits : 0;
}

std::uint64_t FaultRegistry::injected_count(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(std::string(site));
  return it != sites_.end() ? it->second.fired : 0;
}

std::uint64_t FaultRegistry::injected_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, armed] : sites_) total += armed.fired;
  return total;
}

}  // namespace pglb
