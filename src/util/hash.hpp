#pragma once
// Stateless hashing utilities used by the streaming partitioners.
//
// All partitioners key their decisions off deterministic hashes of vertex and
// edge identifiers so that a partitioning is a pure function of
// (graph, cluster, weights, seed) — the property the paper relies on when it
// says a vertex is "hashed to" a machine or shard.

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace pglb {

/// 64-bit mix of a single value with a seed domain.
constexpr std::uint64_t hash_u64(std::uint64_t value, std::uint64_t seed = 0) noexcept {
  return splitmix64(value ^ (seed * 0x9e3779b97f4a7c15ull));
}

/// Combine two hashes (order-sensitive), boost::hash_combine style.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/// Hash of an (src, dst) edge identifier.
constexpr std::uint64_t hash_edge(std::uint64_t src, std::uint64_t dst,
                                  std::uint64_t seed = 0) noexcept {
  return hash_combine(hash_u64(src, seed), hash_u64(dst, seed + 1));
}

/// Map a hash to the unit interval [0, 1).
constexpr double hash_to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Pick an index in [0, cum_weights.size()) from a hash, where cum_weights is
/// the inclusive prefix sum of (possibly unnormalised) selection weights.
/// This is the "weighted random hash" primitive of the heterogeneity-aware
/// Random Hash partitioner (Fig. 4 of the paper).
std::size_t weighted_pick(std::uint64_t h, std::span<const double> cum_weights) noexcept;

/// Inclusive prefix sum helper for weighted_pick.
std::vector<double> prefix_sum(std::span<const double> weights);

}  // namespace pglb
