#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace pglb {

namespace {

LogLevel parse_level(const char* text) {
  if (text == nullptr) return LogLevel::kInfo;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& threshold_storage() {
  static std::atomic<LogLevel> level{parse_level(std::getenv("PGLB_LOG"))};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

LogLevel log_threshold() noexcept { return threshold_storage().load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) noexcept {
  threshold_storage().store(level, std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << "[pglb " << level_tag(level) << "] " << message << '\n';
}

}  // namespace detail

}  // namespace pglb
