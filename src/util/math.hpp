#pragma once
// Small numeric helpers shared across modules (header-only).

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>

namespace pglb {

/// Compensated (Kahan-Babuska) summation: the engine accumulates millions of
/// small virtual-time increments, so naive summation would drift.
class KahanSum {
 public:
  void add(double value) noexcept {
    const double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      comp_ += (sum_ - t) + value;
    } else {
      comp_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  KahanSum& operator+=(double value) noexcept {
    add(value);
    return *this;
  }

  double value() const noexcept { return sum_ + comp_; }
  void reset() noexcept { sum_ = comp_ = 0.0; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  KahanSum s;
  for (const double x : xs) s.add(x);
  return s.value() / static_cast<double>(xs.size());
}

inline double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  KahanSum s;
  for (const double x : xs) s.add((x - m) * (x - m));
  return std::sqrt(s.value() / static_cast<double>(xs.size() - 1));
}

/// |a - b| / |b|, the error metric the paper uses for CCR accuracy
/// ("<10% error", "108% error").  b is the reference value.
inline double relative_error(double a, double b) {
  if (b == 0.0) return a == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::abs(a - b) / std::abs(b);
}

/// Geometric mean; used to summarise speedups across benchmarks.
inline double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  KahanSum logs;
  for (const double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean: values must be positive");
    logs.add(std::log(x));
  }
  return std::exp(logs.value() / static_cast<double>(xs.size()));
}

inline bool approx_equal(double a, double b, double rel_tol = 1e-9, double abs_tol = 1e-12) {
  return std::abs(a - b) <= std::max(abs_tol, rel_tol * std::max(std::abs(a), std::abs(b)));
}

}  // namespace pglb
