#pragma once
// ASCII / CSV table rendering for the benchmark harness.  Every bench binary
// prints the paper's table/figure as rows through this printer so the output
// format is uniform and machine-parseable.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pglb {

/// A simple column-aligned table.  Cells are strings; numeric helpers format
/// with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Start a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string text);
  Table& cell(double value, int precision = 3);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Render with aligned columns and a header rule.
  std::string to_ascii() const;
  /// Render as CSV (RFC-4180-ish; quotes cells containing commas).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
std::string format_double(double value, int precision);
std::string format_speedup(double value);   ///< e.g. "1.45x"
std::string format_percent(double frac);    ///< 0.179 -> "17.9%"

}  // namespace pglb
