#include "util/portfile.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parse.hpp"

namespace pglb {

bool write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << port << '\n';
    if (!out.flush()) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<std::uint16_t> read_port_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string text;
  if (!std::getline(in, text)) return std::nullopt;
  const auto value = parse_int(text);
  if (!value || *value <= 0 || *value > 65535) return std::nullopt;
  return static_cast<std::uint16_t>(*value);
}

std::uint16_t wait_port_file(const std::string& path, std::uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (const auto port = read_port_file(path)) return *port;
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("port file '" + path + "' did not appear within " +
                               std::to_string(timeout_ms) + " ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::string make_port_dir() {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string pattern =
      std::string(tmpdir != nullptr && tmpdir[0] != '\0' ? tmpdir : "/tmp") +
      "/pglb-ports-XXXXXX";
  std::vector<char> buffer(pattern.begin(), pattern.end());
  buffer.push_back('\0');
  if (::mkdtemp(buffer.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for '" + pattern + "'");
  }
  return std::string(buffer.data());
}

}  // namespace pglb
