#pragma once
// Deterministic shared thread pool for the profile -> partition -> run
// pipeline.
//
// Design rules that make parallel results bit-identical to serial ones at any
// thread count:
//
//  * Work is split into STATIC shards whose boundaries depend only on the
//    problem size and a fixed grain — never on the thread count.  Threads
//    claim shards dynamically (self-scheduling steal from a shared counter),
//    but each shard's content and output slot are fixed, so scheduling order
//    cannot change results.
//  * Shards write disjoint output slots; cross-shard reductions are combined
//    IN SHARD ORDER (ordered_kahan_sum), so floating-point association is a
//    pure function of the shard layout.
//  * Nested parallel_for calls from inside a pool worker run inline and
//    serially — the outer fan-out already owns the hardware, and inlining
//    keeps the pool deadlock-free without a multi-level scheduler.
//
// The calling thread always participates, so ThreadPool(n) spawns n-1
// workers and ThreadPool(1) is pure inline serial execution.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace pglb {

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the caller; 0 picks
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const noexcept { return threads_; }

  /// Execute fn(shard) for every shard in [0, num_shards), distributed over
  /// the workers and the calling thread.  Blocks until all shards are done;
  /// the first exception thrown by any shard is rethrown here.  Concurrent
  /// top-level callers are serialized (one fan-out owns the pool at a time);
  /// calls from inside a shard run inline.
  void run_shards(std::size_t num_shards, const std::function<void(std::size_t)>& fn);

  /// True on a thread currently executing inside a run_shards region (worker
  /// or participating caller) — such threads must not fan out again.
  static bool in_parallel_region() noexcept;

 private:
  struct Region;

  void worker_loop();
  static void execute_shards(Region& region);

  unsigned threads_;
  std::vector<std::thread> workers_;
  struct State;
  std::unique_ptr<State> state_;
};

/// The process-wide pool, sized by the PGLB_THREADS environment variable
/// (default: hardware concurrency).  PGLB_THREADS=1 disables parallelism.
ThreadPool& global_pool();

/// `pool` if non-null, else the global pool — the convention every parallel
/// entry point in the library uses for its optional pool parameter.
inline ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool != nullptr ? *pool : global_pool();
}

/// Static shard layout: boundaries depend only on (n, grain), never on the
/// thread count, so per-shard partial results are thread-count-invariant.
inline std::size_t shard_count(std::size_t n, std::size_t grain) {
  return grain == 0 ? 0 : (n + grain - 1) / grain;
}

/// Run fn(begin, end) over the static shards of [0, n) with the given grain.
/// fn must only write state owned by its own index range.  fn is called once
/// PER SHARD even when execution is inline (1 thread, nested region): the
/// call structure is a pure function of (n, grain), so per-shard partials —
/// and with them ordered reductions — are bit-identical at every thread
/// count, not merely when the collapsed association happens to agree.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, std::size_t grain, Fn&& fn) {
  if (n == 0) return;
  const std::size_t shards = shard_count(n, grain);
  if (shards <= 1) {
    fn(std::size_t{0}, n);
    return;
  }
  pool.run_shards(shards, [&](std::size_t shard) {
    const std::size_t begin = shard * grain;
    const std::size_t end = std::min(n, begin + grain);
    fn(begin, end);
  });
}

/// Ordered parallel reduction: Kahan-sum each static shard independently,
/// then Kahan-combine the per-shard partials in shard order.  The result is
/// a pure function of (n, grain, values) — identical at every thread count.
/// NOTE: the association differs from a single serial Kahan pass, so use
/// this for NEW reductions, not to replace an existing serial sum whose
/// exact bits are pinned by tests.
template <typename Getter>
double ordered_kahan_sum(ThreadPool& pool, std::size_t n, std::size_t grain,
                         Getter&& value_at) {
  if (n == 0) return 0.0;
  const std::size_t shards = shard_count(n, grain);
  std::vector<double> partials(shards, 0.0);
  parallel_for(pool, n, grain, [&](std::size_t begin, std::size_t end) {
    KahanSum sum;
    for (std::size_t i = begin; i < end; ++i) sum.add(value_at(i));
    partials[begin / grain] = sum.value();
  });
  KahanSum total;
  for (const double p : partials) total.add(p);
  return total.value();
}

/// Seed for shard `shard` of a parallel stochastic stage: an independent
/// stream derived from the base seed by splitmix64, so sharded generation is
/// deterministic per (base_seed, shard) and stitching in shard order gives a
/// thread-count-invariant result.
constexpr std::uint64_t shard_seed(std::uint64_t base_seed, std::uint64_t shard) noexcept {
  return splitmix64(base_seed ^ splitmix64(shard + 0x51ed2701a9e5a3c5ull));
}

}  // namespace pglb
