#pragma once
// Locale-independent number parsing and formatting.
//
// std::strtod and iostream extraction honour the process locale: under e.g.
// LC_NUMERIC=de_DE a "2.1" silently parses as 2 (the decimal point is ','
// there).  Every number the library reads from flags or TSV files is in the
// C locale ("." decimal point), so parsing goes through std::from_chars,
// which is locale-independent by specification; a strtod fallback pinned to
// the "C" locale covers toolchains without floating-point from_chars.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pglb {

/// Parse `text` as a double in the C locale.  The whole string must be
/// consumed (no trailing characters); empty input or partial parses return
/// nullopt.  Accepts everything std::from_chars general format does:
/// "2.1", "-3e-4", "inf", "nan" — plus leading whitespace and an explicit
/// '+' sign for strtod compatibility.  Hex floats ("0x1p3") are rejected.
std::optional<double> parse_double(std::string_view text);

/// Parse `text` as a base-10 signed integer; whole string, C locale.
/// Leading whitespace and an explicit '+' sign are accepted for strtoll
/// compatibility.
std::optional<std::int64_t> parse_int(std::string_view text);

/// Shortest round-trip decimal form of `value` ("2.1", "1e+20"), always with
/// a '.' decimal point regardless of the process locale.
std::string format_double(double value);

}  // namespace pglb
