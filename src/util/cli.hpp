#pragma once
// Tiny --key=value command-line parser shared by benches and examples.
// Unknown flags are an error (so typos in sweep scripts fail loudly).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pglb {

class Cli {
 public:
  /// Parse argv.  Accepted forms: --key=value, --key value, --flag (bool).
  /// Positional arguments are collected in order.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, std::string fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }
  const std::string& program() const noexcept { return program_; }

  /// Keys seen on the command line that were never queried; call at the end
  /// of main() to reject typos.
  std::vector<std::string> unused_keys() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace pglb
