#pragma once
// Deterministic pseudo-random number generation for the whole library.
//
// Everything stochastic in pglb (graph generators, hash partitioners, engine
// tie-breaking) draws from these generators with an explicit seed so that a
// full pipeline run is bit-reproducible.  We deliberately avoid
// std::mt19937 + std::uniform_*_distribution because their outputs are not
// guaranteed identical across standard library implementations.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace pglb {

/// SplitMix64 step: the canonical 64-bit finalizer, used both as a seed
/// expander and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept { reseed(seed); }

  /// Re-initialise the state from a single 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      sm = splitmix64(sm);
      word = sm;
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Standard-normal variate (Marsaglia polar method).
  double next_normal() noexcept;

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = std::numeric_limits<double>::quiet_NaN();
};

/// Sampler over a discrete distribution given by unnormalised weights.
/// Uses the cumulative table + binary search, mirroring the paper's
/// `multinomial(cdf)` primitive in Algorithm 1.
class DiscreteSampler {
 public:
  DiscreteSampler() = default;
  explicit DiscreteSampler(std::span<const double> weights) { reset(weights); }

  void reset(std::span<const double> weights);

  /// Draw an index in [0, size()) with probability proportional to weights.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  bool empty() const noexcept { return cdf_.empty(); }

  /// Total mass of the (unnormalised) weights this sampler was built from.
  double total_mass() const noexcept { return cdf_.empty() ? 0.0 : cdf_.back(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace pglb
