#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace pglb {

void append_json_string(std::string& out, std::string_view value) {
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_json_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "0";  // JSON has no inf/nan
    return;
  }
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, ec == std::errc() ? end : buffer);
}

}  // namespace pglb
