#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace pglb {

namespace {

thread_local bool t_in_parallel_region = false;

struct RegionGuard {
  RegionGuard() : previous(t_in_parallel_region) { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = previous; }
  bool previous;
};

}  // namespace

/// One fan-out: a fixed shard count claimed from a shared atomic counter.
struct ThreadPool::Region {
  std::size_t total = 0;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::atomic<std::size_t> next{0};       ///< next unclaimed shard
  std::atomic<std::size_t> completed{0};  ///< shards finished (ran or skipped)
  std::atomic<std::size_t> refs{0};       ///< workers still holding a pointer
  std::atomic<bool> failed{false};

  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr exception;
};

struct ThreadPool::State {
  std::mutex mutex;                ///< guards region/stop + worker wakeup
  std::condition_variable wake;
  Region* region = nullptr;        ///< the single active fan-out, if any
  bool stop = false;
  std::mutex fan_out_mutex;        ///< serializes top-level run_shards callers
};

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads != 0 ? threads : std::max(1u, std::thread::hardware_concurrency())),
      state_(std::make_unique<State>()) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->wake.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::in_parallel_region() noexcept { return t_in_parallel_region; }

void ThreadPool::execute_shards(Region& region) {
  while (true) {
    const std::size_t shard = region.next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= region.total) break;
    if (!region.failed.load(std::memory_order_relaxed)) {
      try {
        (*region.fn)(shard);
      } catch (...) {
        std::lock_guard<std::mutex> lock(region.mutex);
        if (!region.exception) region.exception = std::current_exception();
        region.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (region.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == region.total) {
      // Last shard: wake the waiting caller.
      std::lock_guard<std::mutex> lock(region.mutex);
      region.done.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  const RegionGuard nested_guard;  // nested fan-outs from shards run inline
  std::unique_lock<std::mutex> lock(state_->mutex);
  while (true) {
    // Queue wait vs run time: the gap between going idle and claiming the
    // next region is the worker's queue wait.
    const std::uint64_t wait_start =
        tracing_enabled() ? Tracer::instance().now_ns() : 0;
    state_->wake.wait(lock, [&] {
      return state_->stop ||
             (state_->region != nullptr &&
              state_->region->next.load(std::memory_order_relaxed) < state_->region->total);
    });
    if (state_->stop) return;
    Region* region = state_->region;
    region->refs.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();

    if (wait_start != 0) {
      Tracer::instance().emit_complete("pool.worker.wait", "pool", wait_start,
                                       Tracer::instance().now_ns());
    }
    {
      PGLB_TRACE_SPAN("pool.worker.run", "pool");
      execute_shards(*region);
    }
    {
      // Notify under the lock: once we release it the caller may destroy the
      // region, so this must be our last touch.
      std::lock_guard<std::mutex> region_lock(region->mutex);
      region->refs.fetch_sub(1, std::memory_order_acq_rel);
      region->done.notify_all();
    }

    lock.lock();
  }
}

void ThreadPool::run_shards(std::size_t num_shards,
                            const std::function<void(std::size_t)>& fn) {
  if (num_shards == 0) return;
  // Counted before the serial/parallel split: run_shards is called the same
  // way at every pool size, so these totals are thread-count-invariant.
  global_registry().count("pool.fanouts");
  global_registry().count("pool.shards", static_cast<std::uint64_t>(num_shards));
  if (threads_ <= 1 || num_shards == 1 || t_in_parallel_region) {
    // Serial path: same shard traversal order as the parallel one, and the
    // same region marking so nesting behaves identically at any pool size.
    const RegionGuard nested_guard;
    for (std::size_t shard = 0; shard < num_shards; ++shard) fn(shard);
    return;
  }

  // One fan-out owns the workers at a time; concurrent top-level callers
  // queue here instead of interleaving shards of unrelated regions.
  std::unique_lock<std::mutex> fan_out_lock(state_->fan_out_mutex, std::defer_lock);
  {
    PGLB_TRACE_SPAN("pool.wait", "pool");
    fan_out_lock.lock();
  }
  PGLB_TRACE_SPAN_ARG("pool.run", "pool", static_cast<std::uint64_t>(num_shards));

  Region region;
  region.total = num_shards;
  region.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->region = &region;
  }
  state_->wake.notify_all();

  {
    const RegionGuard nested_guard;
    execute_shards(region);
  }

  {
    // Wait for stragglers to finish the claimed shards.
    std::unique_lock<std::mutex> region_lock(region.mutex);
    region.done.wait(region_lock, [&] {
      return region.completed.load(std::memory_order_acquire) == region.total;
    });
  }
  {
    // Unpublish BEFORE draining refs.  A worker grabs the region pointer and
    // increments refs inside one state_->mutex critical section, so a worker
    // that has passed the wake predicate but not yet incremented refs is
    // invisible to a refs==0 check; unpublishing first (under the same mutex)
    // guarantees no further worker can grab the region, and the drain below
    // then covers every holder.
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->region = nullptr;
  }
  {
    // Drain: the region lives on this stack frame, so every worker must drop
    // its pointer before we return.
    std::unique_lock<std::mutex> region_lock(region.mutex);
    region.done.wait(region_lock, [&] {
      return region.refs.load(std::memory_order_acquire) == 0;
    });
  }
  if (region.exception) std::rethrow_exception(region.exception);
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    const char* env = std::getenv("PGLB_THREADS");
    if (env != nullptr) {
      const long value = std::strtol(env, nullptr, 10);
      if (value >= 1) return static_cast<unsigned>(value);
    }
    return 0u;  // auto
  }());
  static const bool registered = [] {
    global_registry().set_gauge("pool.threads", static_cast<double>(pool.threads()));
    return true;
  }();
  (void)registered;
  return pool;
}

}  // namespace pglb
