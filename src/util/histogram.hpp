#pragma once
// Histograms for degree distributions (Fig. 6 of the paper) and load-balance
// diagnostics.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pglb {

/// Exact integer-valued histogram: counts[v] = number of samples equal to v.
/// Suitable for degree distributions where the support is bounded by the
/// maximum degree.
class ExactHistogram {
 public:
  void add(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t count_of(std::uint64_t value) const noexcept {
    return value < counts_.size() ? counts_[value] : 0;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t max_value() const noexcept {
    return counts_.empty() ? 0 : counts_.size() - 1;
  }

  /// P(value), i.e. count / total.
  double probability(std::uint64_t value) const noexcept;

  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// One (value, count) point of a log-binned histogram.
struct LogBin {
  double bin_center = 0.0;   ///< geometric center of the bin
  std::uint64_t count = 0;   ///< samples in the bin
  double density = 0.0;      ///< count / (total * bin_width) — comparable across bins
};

/// Log-bin an exact histogram with `bins_per_decade` bins per factor of 10.
/// This is how Fig. 6's log-log degree plot is produced.
std::vector<LogBin> log_bin(const ExactHistogram& hist, int bins_per_decade = 8);

/// Least-squares slope of log(density) vs log(value) over log bins — a quick
/// empirical estimate of the power-law exponent alpha (P(d) ~ d^-alpha).
/// Returns the *positive* exponent.  Bins below `min_value` are ignored
/// (power laws only hold in the tail).
double fit_powerlaw_exponent(std::span<const LogBin> bins, double min_value = 2.0);

/// Render a crude ASCII log-log scatter for bench output.
std::string ascii_loglog(std::span<const LogBin> bins, int width = 60, int height = 16);

}  // namespace pglb
