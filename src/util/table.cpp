#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pglb {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: header must not be empty");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  if (rows_.empty()) row();
  if (rows_.back().size() >= header_.size()) {
    throw std::logic_error("Table: row has more cells than header columns");
  }
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(double value, int precision) { return cell(format_double(value, precision)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      out << "| " << text << std::string(widths[c] - text.size() + 1, ' ');
    }
    out << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (const char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << escape(cells[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_ascii(); }

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string format_speedup(double value) { return format_double(value, 2) + "x"; }

std::string format_percent(double frac) { return format_double(frac * 100.0, 1) + "%"; }

}  // namespace pglb
