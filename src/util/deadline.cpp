#include "util/deadline.hpp"

namespace pglb {

namespace {
thread_local const CancelToken* t_current_token = nullptr;
}  // namespace

CancelScope::CancelScope(const CancelToken& token) noexcept
    : previous_(t_current_token) {
  t_current_token = &token;
}

CancelScope::~CancelScope() { t_current_token = previous_; }

const CancelToken* CancelScope::current() noexcept { return t_current_token; }

}  // namespace pglb
