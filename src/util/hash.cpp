#include "util/hash.hpp"

#include <algorithm>
#include <vector>

namespace pglb {

std::size_t weighted_pick(std::uint64_t h, std::span<const double> cum_weights) noexcept {
  if (cum_weights.empty()) return 0;
  const double u = hash_to_unit(h) * cum_weights.back();
  const auto it = std::upper_bound(cum_weights.begin(), cum_weights.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cum_weights.begin(), static_cast<std::ptrdiff_t>(cum_weights.size()) - 1));
}

std::vector<double> prefix_sum(std::span<const double> weights) {
  std::vector<double> cum;
  cum.reserve(weights.size());
  double acc = 0.0;
  for (const double w : weights) {
    acc += w;
    cum.push_back(acc);
  }
  return cum;
}

}  // namespace pglb
