#include "util/netfault.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>

#include "obs/registry.hpp"
#include "util/json.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

#ifdef __unix__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace pglb {

namespace {

[[noreturn]] void bad_spec(const std::string& fragment, const std::string& why) {
  throw std::invalid_argument("netfault spec '" + fragment + "': " + why);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::uint64_t parse_u64_or(const std::string& fragment, const std::string& text) {
  const auto value = parse_int(text);
  if (!value || *value < 0) bad_spec(fragment, "'" + text + "' is not a count");
  return static_cast<std::uint64_t>(*value);
}

void parse_action(const std::string& fragment, const std::string& text,
                  NetFaultRule& rule) {
  const auto parts = split(text, ':');
  if (parts[0] == "delay") {
    if (parts.size() < 2 || parts.size() > 4) {
      bad_spec(fragment, "delay needs ':<ms>[:<jitter_ms>[:<seed>]]'");
    }
    rule.action = NetFaultRule::Action::kDelay;
    rule.delay_ms = parse_u64_or(fragment, parts[1]);
    if (parts.size() >= 3) rule.jitter_ms = parse_u64_or(fragment, parts[2]);
    if (parts.size() == 4) rule.seed = parse_u64_or(fragment, parts[3]);
  } else if (parts[0] == "throttle") {
    if (parts.size() != 2) bad_spec(fragment, "throttle needs ':<bytes_per_s>'");
    rule.action = NetFaultRule::Action::kThrottle;
    rule.bytes_per_s = parse_u64_or(fragment, parts[1]);
    if (rule.bytes_per_s == 0) bad_spec(fragment, "throttle rate must be > 0");
  } else if (parts[0] == "tear") {
    if (parts.size() != 3) bad_spec(fragment, "tear needs ':<nbytes>:<stall_ms>'");
    rule.action = NetFaultRule::Action::kTear;
    rule.tear_bytes = parse_u64_or(fragment, parts[1]);
    rule.stall_ms = parse_u64_or(fragment, parts[2]);
    if (rule.tear_bytes == 0) bad_spec(fragment, "tear offset is 1-based bytes");
  } else if (parts[0] == "reset") {
    if (parts.size() != 1) bad_spec(fragment, "reset takes no argument");
    rule.action = NetFaultRule::Action::kReset;
  } else if (parts[0] == "blackhole") {
    if (parts.size() != 1) bad_spec(fragment, "blackhole takes no argument");
    rule.action = NetFaultRule::Action::kBlackhole;
  } else if (parts[0] == "corrupt") {
    if (parts.size() != 2 && parts.size() != 3) {
      bad_spec(fragment, "corrupt needs ':<p>[:<seed>]'");
    }
    rule.action = NetFaultRule::Action::kCorrupt;
    const auto p = parse_double(parts[1]);
    if (!p || !(*p >= 0.0 && *p <= 1.0)) {
      bad_spec(fragment, "probability must be in [0, 1]");
    }
    rule.probability = *p;
    if (parts.size() == 3) rule.seed = parse_u64_or(fragment, parts[2]);
  } else {
    bad_spec(fragment,
             "unknown action '" + parts[0] +
                 "' (delay:<ms>[:<jitter>[:<seed>]], throttle:<bytes_per_s>, "
                 "tear:<nbytes>:<stall_ms>, reset, blackhole, "
                 "corrupt:<p>[:<seed>])");
  }
}

void parse_window(const std::string& fragment, const std::string& text,
                  NetFaultRule& rule) {
  const auto parts = split(text, ':');
  if (parts[0] != "from" || parts.size() < 2 || parts.size() > 3) {
    bad_spec(fragment, "window is 'from:<t0_ms>[:<t1_ms>]'");
  }
  rule.from_ms = parse_u64_or(fragment, parts[1]);
  if (parts.size() == 3) {
    rule.until_ms = parse_u64_or(fragment, parts[2]);
    if (rule.until_ms <= rule.from_ms) {
      bad_spec(fragment, "window end must be after its start");
    }
  }
}

void parse_selector(const std::string& fragment, const std::string& text,
                    NetFaultRule& rule) {
  const auto parts = split(text, ':');
  if (parts[0] == "route") {
    if (parts.size() != 2) bad_spec(fragment, "route needs ':<k>'");
    rule.route = static_cast<int>(parse_u64_or(fragment, parts[1]));
  } else if (parts[0] == "conn") {
    if (parts.size() != 2) bad_spec(fragment, "conn needs ':<n>'");
    rule.conn = static_cast<int>(parse_u64_or(fragment, parts[1]));
    if (rule.conn == 0) bad_spec(fragment, "conn is 1-based");
  } else if (parts[0] == "dir") {
    if (parts.size() != 2 || (parts[1] != "up" && parts[1] != "down")) {
      bad_spec(fragment, "dir needs ':up' or ':down'");
    }
    rule.dir = parts[1] == "up" ? NetFaultRule::Dir::kUp
                                : NetFaultRule::Dir::kDown;
  } else {
    bad_spec(fragment, "unknown selector '" + parts[0] +
                           "' (route:<k>, conn:<n>, dir:up|down)");
  }
}

/// Stable per-(route, conn, dir) key, mixed into corruption seeds so two
/// connections never share a flip pattern.
std::uint64_t conn_key(std::size_t route, std::uint64_t conn, bool upstream) {
  return splitmix64((static_cast<std::uint64_t>(route) << 32) ^ (conn << 1) ^
                    (upstream ? 1u : 0u));
}

}  // namespace

std::vector<NetFaultRule> parse_netfault_rules(const std::string& text) {
  // '|' is an equivalent rule separator: ';' is a list separator in CMake and
  // a command separator in shells, so scripted drills need an alternative.
  std::string normalized = text;
  std::replace(normalized.begin(), normalized.end(), '|', ';');
  std::vector<NetFaultRule> rules;
  for (const std::string& fragment : split(normalized, ';')) {
    if (fragment.empty()) continue;
    NetFaultRule rule;
    rule.text = fragment;
    // Selectors ('%...') bind after the window ('@...'), so strip right to
    // left: action [@window] [%selector,...]
    std::string head = fragment;
    const std::size_t pct = head.find('%');
    std::string selectors;
    if (pct != std::string::npos) {
      selectors = head.substr(pct + 1);
      head = head.substr(0, pct);
    }
    const std::size_t at = head.find('@');
    if (at != std::string::npos) {
      parse_window(fragment, head.substr(at + 1), rule);
      head = head.substr(0, at);
    }
    if (head.empty()) bad_spec(fragment, "missing action");
    parse_action(fragment, head, rule);
    if (pct != std::string::npos) {
      for (const std::string& selector : split(selectors, ',')) {
        if (selector.empty()) bad_spec(fragment, "empty selector");
        parse_selector(fragment, selector, rule);
      }
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

NetFaultEngine::NetFaultEngine(std::vector<NetFaultRule> rules,
                               std::uint64_t seed)
    : seed_(seed) {
  states_.reserve(rules.size());
  for (NetFaultRule& rule : rules) {
    RuleState state;
    state.rng = splitmix64(rule.seed ^ seed_);
    state.rule = std::move(rule);
    states_.push_back(std::move(state));
  }
}

std::uint64_t NetFaultEngine::on_accept(std::size_t route) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (route >= accepts_.size()) accepts_.resize(route + 1, 0);
  return ++accepts_[route];
}

bool NetFaultEngine::matches(const NetFaultRule& rule, std::size_t route,
                             std::uint64_t conn, bool upstream,
                             std::uint64_t now_ms) const {
  if (now_ms < rule.from_ms || now_ms >= rule.until_ms) return false;
  if (rule.route >= 0 && static_cast<std::size_t>(rule.route) != route) {
    return false;
  }
  if (rule.conn >= 0 && static_cast<std::uint64_t>(rule.conn) != conn) {
    return false;
  }
  if (rule.dir == NetFaultRule::Dir::kUp && !upstream) return false;
  if (rule.dir == NetFaultRule::Dir::kDown && upstream) return false;
  return true;
}

void NetFaultEngine::fired(RuleState& state, std::size_t route,
                           std::uint64_t conn) {
  ++state.events;
  state.conns.insert({route, conn});
  global_registry().count("netfault.injected");
}

NetFaultChunkPlan NetFaultEngine::on_chunk(std::size_t route,
                                           std::uint64_t conn, bool upstream,
                                           std::uint64_t now_ms,
                                           std::string& chunk) {
  NetFaultChunkPlan plan;
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t& offset = offsets_[{route, conn, upstream}];
  const std::uint64_t chunk_offset = offset;
  offset += chunk.size();
  for (RuleState& state : states_) {
    const NetFaultRule& rule = state.rule;
    if (!matches(rule, route, conn, upstream, now_ms)) continue;
    switch (rule.action) {
      case NetFaultRule::Action::kDelay: {
        std::uint64_t extra = 0;
        if (rule.jitter_ms > 0) {
          state.rng = splitmix64(state.rng);
          extra = state.rng % (rule.jitter_ms + 1);
        }
        plan.pre_delay_ms += rule.delay_ms + extra;
        fired(state, route, conn);
        break;
      }
      case NetFaultRule::Action::kThrottle: {
        plan.post_delay_ms +=
            (static_cast<std::uint64_t>(chunk.size()) * 1000) / rule.bytes_per_s;
        fired(state, route, conn);
        break;
      }
      case NetFaultRule::Action::kTear: {
        const auto key = std::make_tuple(route, conn, upstream);
        if (chunk.empty() || state.torn.count(key) != 0) break;
        state.torn.insert(key);
        plan.tear_at = std::min<std::size_t>(
            static_cast<std::size_t>(rule.tear_bytes), chunk.size());
        plan.tear_stall_ms = std::max(plan.tear_stall_ms, rule.stall_ms);
        fired(state, route, conn);
        break;
      }
      case NetFaultRule::Action::kReset:
        plan.reset = true;
        fired(state, route, conn);
        break;
      case NetFaultRule::Action::kBlackhole:
        plan.hold = true;
        fired(state, route, conn);
        break;
      case NetFaultRule::Action::kCorrupt: {
        // Keyed on the ABSOLUTE stream offset, so the flip pattern is
        // independent of how reads sliced the stream into chunks.
        const std::uint64_t base =
            splitmix64(rule.seed ^ seed_ ^ conn_key(route, conn, upstream));
        std::uint64_t flips = 0;
        for (std::size_t i = 0; i < chunk.size(); ++i) {
          const std::uint64_t draw = splitmix64(
              base ^ ((chunk_offset + i) * 0x9E3779B97F4A7C15ull));
          const double uniform =
              static_cast<double>(draw >> 11) * 0x1.0p-53;
          if (uniform < rule.probability) {
            chunk[i] = static_cast<char>(
                static_cast<unsigned char>(chunk[i]) ^
                (1u << ((draw >> 56) & 7u)));
            ++flips;
          }
        }
        if (flips > 0) {
          plan.corrupted += flips;
          fired(state, route, conn);
          state.events += flips - 1;  // fired() counted the first flip
        }
        break;
      }
    }
  }
  return plan;
}

bool NetFaultEngine::holding(std::size_t route, std::uint64_t conn,
                             bool upstream, std::uint64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RuleState& state : states_) {
    if (state.rule.action != NetFaultRule::Action::kBlackhole) continue;
    if (matches(state.rule, route, conn, upstream, now_ms)) return true;
  }
  return false;
}

std::vector<NetFaultRuleCounters> NetFaultEngine::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<NetFaultRuleCounters> out;
  out.reserve(states_.size());
  for (const RuleState& state : states_) {
    out.push_back({state.rule.text, state.conns.size(), state.events});
  }
  return out;
}

std::string NetFaultEngine::counters_json() const {
  const std::vector<NetFaultRuleCounters> rules = counters();
  std::string out = "{\"seed\":";
  append_json_number(out, static_cast<double>(seed_));
  out += ",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"rule\":";
    append_json_string(out, rules[i].rule);
    out += ",\"conns\":";
    append_json_number(out, static_cast<double>(rules[i].conns));
    out += ",\"events\":";
    append_json_number(out, static_cast<double>(rules[i].events));
    out.push_back('}');
  }
  out += "]}";
  return out;
}

#ifdef __unix__

namespace {

bool write_all_fd(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == ENOBUFS || errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int dial(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

struct ChaosProxy::Conn {
  std::size_t route = 0;
  std::uint64_t ordinal = 0;
  int client = -1;
  int upstream = -1;
  std::thread up;
  std::thread down;
  std::atomic<int> live_pumps{2};
};

ChaosProxy::ChaosProxy(Options options)
    : options_(std::move(options)),
      engine_(parse_netfault_rules(options_.scenario), options_.seed) {}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  if (started_) return;
  listeners_.assign(options_.targets.size(), -1);
  ports_.assign(options_.targets.size(), 0);
  for (std::size_t route = 0; route < options_.targets.size(); ++route) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("chaos: socket failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // OS-chosen ephemeral port: parallel drills never collide
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
      ::close(fd);
      throw std::runtime_error("chaos: bind/listen failed");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    listeners_[route] = fd;
    ports_[route] = ntohs(bound.sin_port);
  }
  stop_ = false;
  start_time_ = std::chrono::steady_clock::now();
  started_ = true;
  acceptors_.reserve(options_.targets.size());
  for (std::size_t route = 0; route < options_.targets.size(); ++route) {
    acceptors_.emplace_back([this, route] { accept_loop(route); });
  }
}

std::uint16_t ChaosProxy::route_port(std::size_t k) const { return ports_[k]; }

std::uint64_t ChaosProxy::elapsed_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

bool ChaosProxy::sleep_interruptible(std::uint64_t ms) const {
  // Sliced so stop() never waits out a long injected delay.
  while (ms > 0 && !stop_) {
    const std::uint64_t slice = std::min<std::uint64_t>(ms, 20);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    ms -= slice;
  }
  return !stop_;
}

void ChaosProxy::accept_loop(std::size_t route) {
  const int listener = listeners_[route];
  while (!stop_) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // listener was shut down
    }
    reap_finished_conns();
    if (stop_) {
      ::close(client);
      break;
    }
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int upstream = dial(options_.upstream_host, options_.targets[route]);
    if (upstream < 0) {
      ::close(client);  // no upstream: the peer sees a clean refusal-by-close
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->route = route;
    conn->ordinal = engine_.on_accept(route);
    conn->client = client;
    conn->upstream = upstream;
    Conn* raw = conn.get();
    raw->up = std::thread([this, raw] { pump(raw, true); });
    raw->down = std::thread([this, raw] { pump(raw, false); });
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
  }
}

void ChaosProxy::reap_finished_conns() {
  std::vector<std::unique_ptr<Conn>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
      if ((*it)->live_pumps.load() == 0) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : dead) {
    if (conn->up.joinable()) conn->up.join();
    if (conn->down.joinable()) conn->down.join();
    if (conn->client >= 0) ::close(conn->client);
    if (conn->upstream >= 0) ::close(conn->upstream);
  }
}

void ChaosProxy::pump(Conn* conn, bool upstream) {
  const int src = upstream ? conn->client : conn->upstream;
  const int dst = upstream ? conn->upstream : conn->client;
  std::string held;  // blackholed bytes, flushed in order on heal
  char buf[4096];
  bool reset = false;
  for (;;) {
    if (stop_) break;
    pollfd pfd{};
    pfd.fd = src;
    pfd.events = POLLIN;
    // Short poll timeout: the heal check below must run even while the
    // source is silent, or healed bytes would wait for fresh traffic.
    const int ready = ::poll(&pfd, 1, 25);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const std::uint64_t now = elapsed_ms();
    if (ready == 0) {
      if (!held.empty() &&
          !engine_.holding(conn->route, conn->ordinal, upstream, now)) {
        if (!write_all_fd(dst, held)) break;
        held.clear();
      }
      continue;
    }
    const ssize_t n = ::read(src, buf, sizeof buf);
    if (n == 0) break;  // EOF: propagate the half-close below
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    std::string chunk(buf, static_cast<std::size_t>(n));
    const NetFaultChunkPlan plan =
        engine_.on_chunk(conn->route, conn->ordinal, upstream, now, chunk);
    if (plan.pre_delay_ms > 0 && !sleep_interruptible(plan.pre_delay_ms)) break;
    if (plan.reset) {
      reset = true;
      break;
    }
    if (plan.hold) {
      held += chunk;
      continue;
    }
    if (!held.empty()) {
      // Healed: everything that was blackholed goes first, in order.
      held += chunk;
      chunk.swap(held);
      held.clear();
    }
    if (plan.tear_at < chunk.size()) {
      const std::string_view view(chunk);
      if (!write_all_fd(dst, view.substr(0, plan.tear_at))) break;
      if (!sleep_interruptible(plan.tear_stall_ms)) break;
      if (!write_all_fd(dst, view.substr(plan.tear_at))) break;
    } else if (!write_all_fd(dst, chunk)) {
      break;
    }
    if (plan.post_delay_ms > 0 && !sleep_interruptible(plan.post_delay_ms)) {
      break;
    }
  }
  if (reset) {
    // Abrupt teardown: linger(0) turns close into RST where the stack
    // supports it; the shutdowns wake the sibling pump immediately.
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(conn->client, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::setsockopt(conn->upstream, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::shutdown(conn->client, SHUT_RDWR);
    ::shutdown(conn->upstream, SHUT_RDWR);
  } else {
    // Propagate the half-close: the peer's reader sees EOF, its writer may
    // still answer through the sibling pump.
    ::shutdown(src, SHUT_RD);
    ::shutdown(dst, SHUT_WR);
  }
  conn->live_pumps.fetch_sub(1);
}

void ChaosProxy::stop() {
  if (!started_) return;
  stop_ = true;
  for (const int fd : listeners_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // wakes blocked accept()
  }
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) {
      if (conn->client >= 0) ::shutdown(conn->client, SHUT_RDWR);
      if (conn->upstream >= 0) ::shutdown(conn->upstream, SHUT_RDWR);
    }
  }
  for (std::thread& acceptor : acceptors_) {
    if (acceptor.joinable()) acceptor.join();
  }
  acceptors_.clear();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->up.joinable()) conn->up.join();
    if (conn->down.joinable()) conn->down.join();
    if (conn->client >= 0) ::close(conn->client);
    if (conn->upstream >= 0) ::close(conn->upstream);
  }
  for (int& fd : listeners_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  started_ = false;
}

#endif  // __unix__

}  // namespace pglb
