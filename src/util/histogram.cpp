#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace pglb {

void ExactHistogram::add(std::uint64_t value, std::uint64_t count) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  counts_[value] += count;
  total_ += count;
}

double ExactHistogram::probability(std::uint64_t value) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count_of(value)) / static_cast<double>(total_);
}

std::vector<LogBin> log_bin(const ExactHistogram& hist, int bins_per_decade) {
  std::vector<LogBin> bins;
  if (hist.total() == 0 || bins_per_decade <= 0) return bins;

  const double ratio = std::pow(10.0, 1.0 / bins_per_decade);
  double lo = 1.0;
  const auto max_v = static_cast<double>(hist.max_value());
  while (lo <= max_v) {
    double hi = lo * ratio;
    // Bin covers integer values in [ceil(lo), ceil(hi) - 1].
    const auto first = static_cast<std::uint64_t>(std::ceil(lo));
    const auto last = static_cast<std::uint64_t>(std::ceil(hi)) - 1;
    if (last >= first) {
      std::uint64_t count = 0;
      for (std::uint64_t v = first; v <= last && v <= hist.max_value(); ++v) {
        count += hist.count_of(v);
      }
      if (count > 0) {
        LogBin bin;
        bin.bin_center = std::sqrt(static_cast<double>(first) * static_cast<double>(last));
        bin.count = count;
        const double width = static_cast<double>(last - first + 1);
        bin.density = static_cast<double>(count) /
                      (static_cast<double>(hist.total()) * width);
        bins.push_back(bin);
      }
    }
    lo = hi;
  }
  return bins;
}

double fit_powerlaw_exponent(std::span<const LogBin> bins, double min_value) {
  // Ordinary least squares on (log x, log y).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (const LogBin& b : bins) {
    if (b.bin_center < min_value || b.density <= 0.0) continue;
    const double x = std::log(b.bin_center);
    const double y = std::log(b.density);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  const double slope = (dn * sxy - sx * sy) / (dn * sxx - sx * sx);
  return -slope;
}

std::string ascii_loglog(std::span<const LogBin> bins, int width, int height) {
  if (bins.empty() || width < 8 || height < 4) return {};
  double min_lx = 1e300, max_lx = -1e300, min_ly = 1e300, max_ly = -1e300;
  for (const LogBin& b : bins) {
    if (b.density <= 0) continue;
    min_lx = std::min(min_lx, std::log10(b.bin_center));
    max_lx = std::max(max_lx, std::log10(b.bin_center));
    min_ly = std::min(min_ly, std::log10(b.density));
    max_ly = std::max(max_ly, std::log10(b.density));
  }
  if (min_lx >= max_lx) max_lx = min_lx + 1;
  if (min_ly >= max_ly) max_ly = min_ly + 1;

  std::vector<std::string> rows(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const LogBin& b : bins) {
    if (b.density <= 0) continue;
    const double fx = (std::log10(b.bin_center) - min_lx) / (max_lx - min_lx);
    const double fy = (std::log10(b.density) - min_ly) / (max_ly - min_ly);
    const int col = std::min(width - 1, static_cast<int>(fx * (width - 1) + 0.5));
    const int row = std::min(height - 1, static_cast<int>((1.0 - fy) * (height - 1) + 0.5));
    rows[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = '*';
  }
  std::string out;
  for (auto& r : rows) {
    out += "  |" + r + "\n";
  }
  out += "  +" + std::string(static_cast<std::size_t>(width), '-') + "\n";
  out += "   log(degree) ->  (y: log P(d))\n";
  return out;
}

}  // namespace pglb
