#pragma once
// Deterministic network chaos layer (docs/CHAOS.md).
//
// The in-process fault harness (util/fault.hpp) can fail or stall a call
// site, but it cannot produce the failures a real network produces BETWEEN
// processes: slow links, half-open partitions, frames torn mid-write,
// connections reset under load, bytes flipped in flight.  This header adds
// that missing layer in two pieces:
//
//  - NetFaultEngine: a pure, seeded rules engine.  Rules come from a
//    PGLB_NETFAULTS-style grammar (the fault.* idiom: ';'-separated
//    fragments, typed std::invalid_argument on any malformed fragment) and
//    are evaluated per forwarded chunk.  All randomness is a splitmix64
//    chain seeded from the rule, and byte corruption is keyed on the
//    ABSOLUTE stream offset — so a scenario replays bit-identically no
//    matter how the kernel slices reads into chunks.
//  - ChaosProxy: a TCP forwarder (one listener per target port) that applies
//    the engine's verdicts on live sockets.  Drills put it between the
//    router and its replicas: `pglb_loadgen --chaos=<scenario>` spawns the
//    `pglb_chaos` tool and points every TcpBackend at the proxy's ports.
//
// Grammar (one rule per ';'; '|' is an equivalent separator for shells and
// CMake scripts where ';' is awkward):
//
//   rule     := action ['@' window] ['%' selector (',' selector)*]
//   action   := delay:<ms>[:<jitter_ms>[:<seed>]]   add latency per chunk
//             | throttle:<bytes_per_s>              pace by chunk size
//             | tear:<nbytes>:<stall_ms>            once per conn+dir: forward
//             |                                     nbytes, stall, resume
//             | reset                               drop the connection hard
//             | blackhole                           accept but never forward
//             |                                     (held bytes flush on heal)
//             | corrupt:<p>[:<seed>]                flip one bit per byte
//             |                                     with probability p
//   window   := from:<t0_ms>[:<t1_ms>]              active [t0, t1) since
//                                                   proxy start; default always
//   selector := route:<k>                           k-th target (0-based)
//             | conn:<n>                            n-th accept on that route
//             |                                     (1-based)
//             | dir:up|down                         up = client->server bytes
//
// Example — the chaos_drill scenario: partition route 0 for 800 ms, heal,
// then slow route 1, and reset the first connection to route 2:
//
//   blackhole@from:300:1100%route:0;delay:25:10@from:1500:2600%route:1;reset%route:2,conn:1
//
// Per-rule counters distinguish `conns` (distinct route/conn pairs the rule
// ever fired on — deterministic for a fixed scenario and fleet topology)
// from `events` (chunk-level firings — informative, timing-dependent).  Both
// are exported through the obs registry and the proxy's metrics endpoint.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

namespace pglb {

struct NetFaultRule {
  enum class Action { kDelay, kThrottle, kTear, kReset, kBlackhole, kCorrupt };
  enum class Dir { kAny, kUp, kDown };

  Action action = Action::kDelay;
  std::uint64_t delay_ms = 0;       ///< delay: base latency per chunk
  std::uint64_t jitter_ms = 0;      ///< delay: uniform extra in [0, jitter]
  std::uint64_t bytes_per_s = 0;    ///< throttle: pacing rate
  std::uint64_t tear_bytes = 0;     ///< tear: bytes forwarded before the stall
  std::uint64_t stall_ms = 0;       ///< tear: stall length
  double probability = 0.0;         ///< corrupt: per-byte bit-flip probability
  std::uint64_t seed = 1;           ///< seeds the rule's splitmix64 chain

  std::uint64_t from_ms = 0;                    ///< window start (proxy time)
  std::uint64_t until_ms = ~std::uint64_t{0};   ///< window end, exclusive

  int route = -1;              ///< selector: target index, -1 = any
  int conn = -1;               ///< selector: accept ordinal (1-based), -1 = any
  Dir dir = Dir::kAny;         ///< selector: direction

  std::string text;            ///< original fragment, echoed in reports
};

/// Parse a scenario string; throws std::invalid_argument naming the offending
/// fragment (the fault.* bad_spec contract).  Empty fragments are skipped, so
/// a trailing ';' is harmless.
std::vector<NetFaultRule> parse_netfault_rules(const std::string& text);

/// Per-rule injection counters, in rule order.
struct NetFaultRuleCounters {
  std::string rule;        ///< the original fragment
  std::uint64_t conns = 0; ///< distinct (route, conn) pairs ever fired on
  std::uint64_t events = 0; ///< chunk-level firings
};

/// What the proxy must do with one chunk, as decided by every matching rule.
/// Evaluation order per chunk: pre_delay, then reset, then hold, then tear,
/// then the (possibly corrupted in place) bytes, then post_delay.
struct NetFaultChunkPlan {
  std::uint64_t pre_delay_ms = 0;   ///< delay rules, summed
  bool reset = false;               ///< drop the connection now
  bool hold = false;                ///< blackhole: buffer, do not forward
  std::size_t tear_at = ~std::size_t{0};  ///< < chunk size: flush prefix,
                                          ///< stall, flush the rest
  std::uint64_t tear_stall_ms = 0;
  std::uint64_t post_delay_ms = 0;  ///< throttle pacing for this chunk
  std::uint64_t corrupted = 0;      ///< bytes flipped in place
};

/// Seeded rules engine.  Thread-safe; one instance serves every connection of
/// a proxy.  Time is the caller's: milliseconds since whatever epoch the
/// caller's scenario windows are written against (the proxy passes
/// milliseconds since start(); tests pass literals).
class NetFaultEngine {
 public:
  explicit NetFaultEngine(std::vector<NetFaultRule> rules,
                          std::uint64_t seed = 1);

  /// Register an accepted connection on `route`; returns its 1-based ordinal
  /// (what the conn:<n> selector matches).
  std::uint64_t on_accept(std::size_t route);

  /// Evaluate every rule against one chunk, mutating `chunk` in place for
  /// corruption and advancing the (route, conn, dir) stream offset.
  NetFaultChunkPlan on_chunk(std::size_t route, std::uint64_t conn,
                             bool upstream, std::uint64_t now_ms,
                             std::string& chunk);

  /// True while a blackhole window still covers (route, conn, dir): held
  /// bytes must stay held.  The proxy polls this to flush on heal.
  bool holding(std::size_t route, std::uint64_t conn, bool upstream,
               std::uint64_t now_ms) const;

  std::size_t rule_count() const { return states_.size(); }
  std::vector<NetFaultRuleCounters> counters() const;

  /// One-line JSON: {"seed":N,"rules":[{"rule":...,"conns":N,"events":N},...]}
  /// — what the pglb_chaos control endpoint answers to "metrics".
  std::string counters_json() const;

 private:
  struct RuleState {
    NetFaultRule rule;
    std::uint64_t events = 0;
    std::uint64_t rng = 0;  ///< splitmix64 chain for delay jitter
    std::set<std::pair<std::size_t, std::uint64_t>> conns;
    /// tear fires once per (route, conn, dir).
    std::set<std::tuple<std::size_t, std::uint64_t, bool>> torn;
  };

  bool matches(const NetFaultRule& rule, std::size_t route, std::uint64_t conn,
               bool upstream, std::uint64_t now_ms) const;
  void fired(RuleState& state, std::size_t route, std::uint64_t conn);

  mutable std::mutex mutex_;
  std::uint64_t seed_;
  std::vector<RuleState> states_;
  std::vector<std::uint64_t> accepts_;              ///< per-route ordinal
  std::map<std::tuple<std::size_t, std::uint64_t, bool>, std::uint64_t>
      offsets_;                                     ///< absolute stream offset
};

#ifdef __unix__

/// Seeded TCP fault-injection proxy: one ephemeral-port listener per target,
/// every accepted connection forwarded to 127.0.0.1:<target> through the
/// engine.  start() binds and spawns the acceptors; stop() (idempotent, also
/// run by the destructor) tears every socket and thread down.  All pump
/// threads are joined — never detached — so the proxy is clean under tsan.
class ChaosProxy {
 public:
  struct Options {
    std::string upstream_host = "127.0.0.1";
    std::vector<std::uint16_t> targets;  ///< route k forwards to targets[k]
    std::string scenario;                ///< parse_netfault_rules grammar
    std::uint64_t seed = 1;
  };

  /// Parses the scenario eagerly: a malformed rule throws here, not mid-drill.
  explicit ChaosProxy(Options options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  void start();
  void stop();

  /// Listening port for route `k` (valid after start()).
  std::uint16_t route_port(std::size_t k) const;

  /// Milliseconds since start() — the clock scenario windows run on.
  std::uint64_t elapsed_ms() const;

  std::string metrics_json() const { return engine_.counters_json(); }
  NetFaultEngine& engine() { return engine_; }

 private:
  struct Conn;

  void accept_loop(std::size_t route);
  void pump(Conn* conn, bool upstream);
  void reap_finished_conns();
  bool sleep_interruptible(std::uint64_t ms) const;

  Options options_;
  NetFaultEngine engine_;
  std::vector<int> listeners_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::thread> acceptors_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point start_time_{};

  mutable std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

#endif  // __unix__

}  // namespace pglb
