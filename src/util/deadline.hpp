#pragma once
// Cooperative deadlines and cancellation for the planning pipeline.
//
// A Deadline is a point on the steady clock (or "never"); a CancelToken is a
// copyable handle over shared state that fires when the deadline passes or
// when someone calls cancel().  Cancellation is cooperative: long-running
// stages poll the token between units of work (a profiling cell, a proxy
// generation, a block of partitioned edges) and bail out with a typed
// CancelledError, which the service layer turns into a "timeout" response
// instead of a hang.  Nothing is ever interrupted mid-unit, so all outputs
// that ARE produced stay bit-identical to an undeadlined run.
//
// Two polling styles:
//  * explicit: pass `const CancelToken*` down the call chain (used across
//    thread-pool fan-outs, where thread-locals do not propagate);
//  * ambient: CancelScope installs a token as the calling thread's current
//    cancellation context and poll_cancellation() checks it — used by
//    partitioner loops, which are pure functions that should not grow a
//    cancellation parameter in every implementation.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

namespace pglb {

/// Thrown when a cooperative check observes an expired deadline or a manual
/// cancel().  `site` names the check point that noticed (e.g. "profiler.cell").
class CancelledError : public std::runtime_error {
 public:
  enum class Reason { kDeadline, kCancelled };

  CancelledError(Reason reason, std::string site)
      : std::runtime_error(std::string(reason == Reason::kDeadline
                                           ? "deadline exceeded at "
                                           : "cancelled at ") +
                           site),
        reason_(reason),
        site_(std::move(site)) {}

  Reason reason() const noexcept { return reason_; }
  const std::string& site() const noexcept { return site_; }

 private:
  Reason reason_;
  std::string site_;
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default-constructed deadlines never expire.
  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline never() { return Deadline(); }

  static Deadline after(Clock::duration d) {
    Deadline deadline;
    deadline.at_ = Clock::now() + d;
    return deadline;
  }

  static Deadline after_ms(std::uint64_t ms) {
    return after(std::chrono::milliseconds(ms));
  }

  bool is_never() const noexcept { return at_ == Clock::time_point::max(); }
  bool expired() const noexcept { return !is_never() && Clock::now() >= at_; }

  /// Seconds until expiry: +inf when never, <= 0 when already expired.
  double remaining_seconds() const noexcept {
    if (is_never()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

  Clock::time_point time_point() const noexcept { return at_; }

 private:
  Clock::time_point at_;
};

/// Copyable cancellation handle; copies share one flag, so cancelling any
/// copy fires them all.  A token fires when its deadline passes OR cancel()
/// is called, whichever comes first.  Thread-safe.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}
  explicit CancelToken(Deadline deadline) : CancelToken() {
    state_->deadline = deadline;
  }

  void cancel() const noexcept {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const noexcept {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  bool cancelled() const noexcept {
    return cancel_requested() || state_->deadline.expired();
  }

  const Deadline& deadline() const noexcept { return state_->deadline; }

  /// Throw CancelledError if the token has fired.  Manual cancellation wins
  /// over deadline expiry when both apply (the caller asked first).
  void check(const char* site) const {
    if (cancel_requested()) throw CancelledError(CancelledError::Reason::kCancelled, site);
    if (state_->deadline.expired()) {
      throw CancelledError(CancelledError::Reason::kDeadline, site);
    }
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    Deadline deadline;
  };
  std::shared_ptr<State> state_;
};

/// check() through an optional token — the convention for explicit threading
/// (nullptr = no cancellation, compiles to one branch).
inline void check_cancel(const CancelToken* token, const char* site) {
  if (token != nullptr) token->check(site);
}

/// RAII: install `token` as the calling thread's ambient cancellation
/// context; restores the previous context on destruction (scopes nest).
/// The context does NOT propagate to thread-pool workers — fan-out loops
/// take the explicit `const CancelToken*` instead.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken& token) noexcept;
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// The innermost installed token on this thread, or nullptr.
  static const CancelToken* current() noexcept;

 private:
  const CancelToken* previous_;
};

/// Poll the ambient cancellation context (no-op when none is installed).
/// Cheap enough for inner loops when amortized (poll every few thousand
/// iterations, not every one).
inline void poll_cancellation(const char* site) {
  if (const CancelToken* token = CancelScope::current()) token->check(site);
}

}  // namespace pglb
