#pragma once
// Port-file handshake for ephemeral listeners (docs/WIRE.md).
//
// Fixed port ranges collide on busy CI hosts: two parallel ctest runs both
// ask for 7651 and one flakes.  The fix is to let the OS pick (`bind` port
// 0), then publish the chosen port through the filesystem: the listener
// writes "<port>\n" to an agreed path (atomically — temp file + rename, so a
// reader never sees a half-written number) and the client polls that path
// before connecting.  Every run gets its own private directory of port
// files, so any number of runs share a host without coordination.

#include <cstdint>
#include <optional>
#include <string>

namespace pglb {

/// Atomically publish `port` at `path` (writes `path.tmp`, then renames).
/// Returns false on IO failure.
bool write_port_file(const std::string& path, std::uint16_t port);

/// Parse a published port.  Empty while the file is missing or malformed.
std::optional<std::uint16_t> read_port_file(const std::string& path);

/// Poll `path` until a port appears.  Throws std::runtime_error after
/// `timeout_ms`.
std::uint16_t wait_port_file(const std::string& path, std::uint64_t timeout_ms);

/// Create a fresh private directory for one run's port files (mkdtemp under
/// $TMPDIR, default /tmp).  Throws on failure.
std::string make_port_dir();

}  // namespace pglb
