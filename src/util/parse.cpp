#include "util/parse.hpp"

#include <charconv>
#include <cstdio>
#include <version>

#if !defined(__cpp_lib_to_chars) && defined(__unix__)
#include <cstdlib>
#include <locale.h>  // newlocale/strtod_l live in the C header on glibc
#endif

namespace pglb {

namespace {

// strtoll/strtod — the parsers these functions replaced — skip leading
// whitespace and accept an explicit '+' sign; from_chars does neither, so
// normalise the prefix here to keep inputs like `--threads " +4"` parsing.
// Everything else stays strict: decimal only (no 0x), full consumption, no
// trailing whitespace.
std::string_view drop_space_and_plus(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\n' || text.front() == '\v' ||
                           text.front() == '\f' || text.front() == '\r')) {
    text.remove_prefix(1);
  }
  if (text.size() >= 2 && text.front() == '+' && text[1] != '+' && text[1] != '-') {
    text.remove_prefix(1);
  }
  return text;
}

}  // namespace

std::optional<double> parse_double(std::string_view text) {
  text = drop_space_and_plus(text);
  if (text.empty()) return std::nullopt;
#if defined(__cpp_lib_to_chars)
  double value = 0.0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || end != text.data() + text.size()) return std::nullopt;
  return value;
#else
  // Fallback: strtod pinned to the "C" locale so the decimal point is '.'
  // even when the process locale says ','.
  const std::string owned(text);
#if defined(__unix__)
  static const locale_t c_locale = ::newlocale(LC_ALL_MASK, "C", locale_t{0});
  char* end = nullptr;
  const double value = ::strtod_l(owned.c_str(), &end, c_locale);
#else
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
#endif
  if (end == owned.c_str() || *end != '\0') return std::nullopt;
  return value;
#endif
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  text = drop_space_and_plus(text);
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || end != text.data() + text.size()) return std::nullopt;
  return value;
}

std::string format_double(double value) {
#if defined(__cpp_lib_to_chars)
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, ec == std::errc() ? end : buffer);
#else
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // %.17g follows the C locale of the process; normalise a comma decimal
  // point back to '.' so output stays byte-stable.
  std::string out(buffer);
  for (char& c : out) {
    if (c == ',') c = '.';
  }
  return out;
#endif
}

}  // namespace pglb
