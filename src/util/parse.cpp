#include "util/parse.hpp"

#include <charconv>
#include <cstdio>
#include <version>

#if !defined(__cpp_lib_to_chars) && defined(__unix__)
#include <cstdlib>
#include <locale.h>  // newlocale/strtod_l live in the C header on glibc
#endif

namespace pglb {

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
#if defined(__cpp_lib_to_chars)
  double value = 0.0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || end != text.data() + text.size()) return std::nullopt;
  return value;
#else
  // Fallback: strtod pinned to the "C" locale so the decimal point is '.'
  // even when the process locale says ','.
  const std::string owned(text);
#if defined(__unix__)
  static const locale_t c_locale = ::newlocale(LC_ALL_MASK, "C", locale_t{0});
  char* end = nullptr;
  const double value = ::strtod_l(owned.c_str(), &end, c_locale);
#else
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
#endif
  if (end == owned.c_str() || *end != '\0') return std::nullopt;
  return value;
#endif
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || end != text.data() + text.size()) return std::nullopt;
  return value;
}

std::string format_double(double value) {
#if defined(__cpp_lib_to_chars)
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, ec == std::errc() ? end : buffer);
#else
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // %.17g follows the C locale of the process; normalise a comma decimal
  // point back to '.' so output stays byte-stable.
  std::string out(buffer);
  for (char& c : out) {
    if (c == ',') c = '.';
  }
  return out;
#endif
}

}  // namespace pglb
