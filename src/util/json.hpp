#pragma once
// Shared JSON serialization primitives.  Every subsystem that emits JSON —
// the service protocol, the metrics registry, the Chrome-trace exporter —
// must route strings through this one escaper so a hostile name (quotes,
// backslashes, control characters) can never corrupt a snapshot, and numbers
// through the one shortest-round-trip formatter so output is byte-stable and
// locale-independent.

#include <string>
#include <string_view>

namespace pglb {

/// Append `value` to `out` as a quoted JSON string with full escaping
/// (quote, backslash, \b \f \n \r \t, and \u00XX for other control bytes).
void append_json_string(std::string& out, std::string_view value);

/// Append a double in shortest round-trip form (std::to_chars): "0.35",
/// "2.1", "1e+20" — deterministic across calls, never locale-dependent.
/// Non-finite values serialize as 0 (JSON has no inf/nan).
void append_json_number(std::string& out, double value);

}  // namespace pglb
