#pragma once
// Deterministic fault injection for resilience testing (docs/ROBUSTNESS.md).
//
// Production code marks its failure-relevant points with
// fault_point("site.name"); a disarmed registry makes that a single relaxed
// atomic load (and -DPGLB_DISABLE_FAULTS compiles it out entirely).  Tests —
// or an operator via the PGLB_FAULTS environment variable — arm sites with a
// trigger and an action, and the next matching hit fails or stalls exactly
// where a real fault would.
//
// Spec grammar (PGLB_FAULTS and FaultRegistry::configure):
//
//   spec     = site '=' action [ '@' trigger ] ( ';' spec )*
//   action   = 'fail' | 'stall:' <milliseconds>
//   trigger  = 'always'                  (default)
//            | 'nth:' <n>                fires on the nth hit only (1-based)
//            | 'prob:' <p> [ ':' seed ]  fires with probability p, seeded RNG
//
//   PGLB_FAULTS="profiler.cell=fail@nth:2;server.parse=fail@prob:0.25:7"
//   PGLB_FAULTS="profiler.cell=stall:100"        # every profiling cell is stuck
//
// Everything is deterministic: hit counting is per-site and the probability
// trigger draws from its own seeded generator, so a given spec fires on the
// same hit sequence in every run.  Fired injections count into the global
// metrics registry ("fault.injected") and per-site via injected_count().
//
// Current sites: profiler.cell, proxy.gen, cache.insert, server.parse.

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include <atomic>

namespace pglb {

/// Thrown by a fired `fail` injection; carries the site that failed.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}

  const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

struct FaultSpec {
  enum class Action { kFail, kStall };
  enum class Trigger { kAlways, kNth, kProb };

  std::string site;
  Action action = Action::kFail;
  std::uint64_t stall_ms = 0;  ///< kStall only
  Trigger trigger = Trigger::kAlways;
  std::uint64_t nth = 1;       ///< kNth only (1-based hit index)
  double probability = 0.0;    ///< kProb only
  std::uint64_t seed = 1;      ///< kProb only
};

/// Parse a PGLB_FAULTS-style spec string; throws std::invalid_argument with
/// the offending fragment on malformed input.  Empty input -> empty list.
std::vector<FaultSpec> parse_fault_specs(const std::string& text);

class FaultRegistry {
 public:
  /// The process-wide registry.  On first use it arms itself from the
  /// PGLB_FAULTS environment variable (empty/unset = disarmed).
  static FaultRegistry& instance();

  /// Replace the armed set with `specs` (resets hit counters).
  void configure(std::vector<FaultSpec> specs);

  /// Parse + configure in one step.
  void configure(const std::string& spec_text) {
    configure(parse_fault_specs(spec_text));
  }

  /// Arm one more site (keeps existing sites; replaces a same-named one).
  void arm(FaultSpec spec);

  /// Disarm everything; fault_point() reverts to its one-load fast path.
  void clear();

  /// Fast path gate: true while any site is armed.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Slow path of fault_point(): count the hit and, if the trigger matches,
  /// perform the action (throw FaultInjectedError, or sleep stall_ms).
  void on_hit(std::string_view site);

  /// Times `site` was evaluated / actually fired since it was armed.
  std::uint64_t hit_count(std::string_view site) const;
  std::uint64_t injected_count(std::string_view site) const;

  /// Total fired injections across every armed site (the metrics endpoint's
  /// "faults.injected" field).
  std::uint64_t injected_total() const;

 private:
  struct Armed {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
    std::uint64_t rng_state = 0;  ///< kProb only
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Armed> sites_;
  std::atomic<bool> enabled_{false};
};

/// Cooperative injection point.  Disabled registry: one relaxed load.
/// -DPGLB_DISABLE_FAULTS: nothing at all.
inline void fault_point(std::string_view site) {
#ifndef PGLB_DISABLE_FAULTS
  FaultRegistry& registry = FaultRegistry::instance();
  if (registry.enabled()) registry.on_hit(site);
#else
  (void)site;
#endif
}

}  // namespace pglb
