#include "util/crc32.hpp"

#include <array>

namespace pglb {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_ieee(std::string_view bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<std::uint8_t>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace pglb
