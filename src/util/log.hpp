#pragma once
// Minimal leveled logging.  Benches and examples use INFO; the engine logs
// per-superstep detail at DEBUG which is off by default.

#include <sstream>
#include <string>

namespace pglb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold (defaults to kInfo; PGLB_LOG=debug|info|warn|error|off
/// in the environment overrides it at startup).
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

template <typename... Args>
void log_at(LogLevel level, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_emit(level, os.str());
}

#define PGLB_LOG_DEBUG(...) ::pglb::log_at(::pglb::LogLevel::kDebug, __VA_ARGS__)
#define PGLB_LOG_INFO(...) ::pglb::log_at(::pglb::LogLevel::kInfo, __VA_ARGS__)
#define PGLB_LOG_WARN(...) ::pglb::log_at(::pglb::LogLevel::kWarn, __VA_ARGS__)
#define PGLB_LOG_ERROR(...) ::pglb::log_at(::pglb::LogLevel::kError, __VA_ARGS__)

}  // namespace pglb
