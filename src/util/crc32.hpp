#pragma once
// CRC-32 (IEEE 802.3, reflected) — the one checksum the repo speaks, shared
// by the snapshot container (persist/snapshot.hpp) and the wire transport's
// integrity-checked frames (service/wire.hpp).  Table-driven, byte at a
// time; plenty for request/response-sized payloads.

#include <cstdint>
#include <string_view>

namespace pglb {

/// CRC-32 over `bytes` (polynomial 0xEDB88320, init/xorout 0xFFFFFFFF).
std::uint32_t crc32_ieee(std::string_view bytes) noexcept;

}  // namespace pglb
