#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pglb {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_normal() noexcept {
  if (!std::isnan(cached_normal_)) {
    const double v = cached_normal_;
    cached_normal_ = std::numeric_limits<double>::quiet_NaN();
    return v;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  return u * factor;
}

void DiscreteSampler::reset(std::span<const double> weights) {
  cdf_.clear();
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("DiscreteSampler: weights must be finite and non-negative");
    }
    acc += w;
    cdf_.push_back(acc);
  }
  if (!cdf_.empty() && acc <= 0.0) {
    throw std::invalid_argument("DiscreteSampler: total weight must be positive");
  }
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  if (cdf_.empty()) throw std::logic_error("DiscreteSampler: sampling from empty distribution");
  const double u = rng.next_double() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace pglb
