#include "machine/energy_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace pglb {

EnergyAccumulator::EnergyAccumulator(std::vector<MachineSpec> machines)
    : machines_(std::move(machines)), energy_(machines_.size()) {}

void EnergyAccumulator::record_interval(std::span<const double> busy_s, double window_s) {
  if (busy_s.size() != machines_.size()) {
    throw std::invalid_argument("EnergyAccumulator: busy vector size mismatch");
  }
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    const double busy = std::min(busy_s[m], window_s);
    const double idle = window_s - busy;
    energy_[m].busy_seconds += busy;
    energy_[m].idle_seconds += idle;
    energy_[m].joules += machines_[m].tdp_watts * busy + machines_[m].idle_watts * idle;
  }
}

double EnergyAccumulator::total_joules() const noexcept {
  double total = 0.0;
  for (const MachineEnergy& e : energy_) total += e.joules;
  return total;
}

double EnergyAccumulator::total_busy_seconds() const noexcept {
  double total = 0.0;
  for (const MachineEnergy& e : energy_) total += e.busy_seconds;
  return total;
}

double EnergyAccumulator::total_idle_seconds() const noexcept {
  double total = 0.0;
  for (const MachineEnergy& e : energy_) total += e.idle_seconds;
  return total;
}

}  // namespace pglb
