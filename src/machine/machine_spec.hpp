#pragma once
// Machine descriptions (Table I of the paper) plus the microarchitectural
// parameters our virtual-cluster substrate needs.  The paper ran on real EC2
// instances and local Xeons; we reproduce their *relative* behaviour with an
// explicit analytic model (see perf_model.hpp).

#include <string>

#include "graph/types.hpp"

namespace pglb {

enum class MachineCategory {
  kComputeOptimized,  ///< EC2 C family
  kGeneralPurpose,    ///< EC2 M family
  kMemoryOptimized,   ///< EC2 R family
  kLocalServer,       ///< physical Xeon servers
};

const char* to_string(MachineCategory category);

struct MachineSpec {
  std::string name;
  MachineCategory category = MachineCategory::kLocalServer;

  // --- Table I columns -----------------------------------------------------
  int hw_threads = 0;       ///< vCPUs / logical cores
  int compute_threads = 0;  ///< hw_threads - 2 (PowerGraph reserves 2 for comm)
  double cost_per_hour = 0; ///< USD; 0 for local machines

  // --- performance-model parameters ---------------------------------------
  double freq_ghz = 0.0;    ///< nominal clock
  double mem_gb = 0.0;      ///< DRAM capacity (0 = unspecified/unbounded)
  double ipc_factor = 1.0;  ///< per-thread arch efficiency relative to baseline
  double mem_bw_gbs = 0.0;  ///< sustained memory bandwidth (GB/s)
  double llc_mb = 0.0;      ///< last-level cache (MB, across sockets)

  // --- energy-model parameters ---------------------------------------------
  double tdp_watts = 0.0;   ///< package+DRAM power at full utilisation
  double idle_watts = 0.0;  ///< power while waiting at a barrier

  bool operator==(const MachineSpec&) const = default;
};

/// Derated copy running at `ghz` (Case 3: emulating wimpy/ARM-like servers by
/// lowering the frequency range).  Dynamic power scales ~ f^3 (P = CV^2f with
/// voltage tracking frequency); idle power and cache are unchanged; memory
/// bandwidth derates linearly with the uncore clock.
MachineSpec with_frequency(const MachineSpec& spec, double ghz);

/// Two specs belong to the same profiling group (Section III-B: only one
/// machine per group is profiled) iff they are identical.
bool same_group(const MachineSpec& a, const MachineSpec& b);

}  // namespace pglb
