#include "machine/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pglb {

WorkloadTraits traits_from_stats(const GraphStats& stats, double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("traits_from_stats: scale must be in (0, 1]");
  }
  WorkloadTraits traits;
  traits.num_vertices_m =
      static_cast<double>(stats.num_vertices) / scale / 1e6;
  traits.footprint_mb =
      static_cast<double>(stats.footprint_bytes) / scale / 1e6;
  // The power-law tail grows with graph size: d_max ~ V^(1/(alpha-1)), so a
  // 1/scale re-inflation multiplies the skew by (1/scale)^(1/(alpha-1)).
  // Graphs with no measurable tail (uniform-degree controls: the log-log fit
  // degenerates to ~0) have no tail to grow — their hubs are scale-invariant.
  double tail_growth = 1.0;
  if (stats.empirical_alpha > 0.1) {
    const double alpha = std::clamp(stats.empirical_alpha, 1.6, 3.5);
    tail_growth = std::pow(1.0 / scale, 1.0 / (alpha - 1.0));
  }
  traits.degree_skew = std::max(1.0, stats.degree_skew * tail_growth);
  traits.work_scale = 1.0 / scale;
  return traits;
}

double amdahl_threads(int threads, double serial_fraction) {
  if (threads < 1) throw std::invalid_argument("amdahl_threads: threads must be >= 1");
  const double n = threads;
  return n / (1.0 + serial_fraction * (n - 1.0));
}

double skew_balance(int threads, double skew_sensitivity, double degree_skew) {
  if (threads < 1) throw std::invalid_argument("skew_balance: threads must be >= 1");
  // Normalised log-skew: a hub 10^6 times the mean degree maps to 1.0.
  const double skew_norm = std::min(1.0, std::log10(1.0 + std::max(0.0, degree_skew)) / 6.0);
  const double n = threads;
  return 1.0 / (1.0 + skew_sensitivity * skew_norm * (1.0 - 1.0 / n));
}

double cache_amplification(const MachineSpec& machine, const AppProfile& app,
                           const WorkloadTraits& traits) {
  if (app.cache_amp <= 0.0 || app.working_set_mb_per_mvertex <= 0.0) return 1.0;
  const double ws_mb = app.working_set_mb_per_mvertex * traits.num_vertices_m;
  if (ws_mb <= 0.0) return 1.0;
  // Logistic in LLC headroom, saturating at 1 + cache_amp when the working
  // set fits comfortably.
  const double x = (machine.llc_mb - ws_mb) / (0.3 * ws_mb);
  const double sigmoid = 1.0 / (1.0 + std::exp(-x));
  return 1.0 + app.cache_amp * sigmoid;
}

double throughput_ops(const MachineSpec& machine, const AppProfile& app,
                      const WorkloadTraits& traits) {
  if (machine.compute_threads < 1) {
    throw std::invalid_argument("throughput_ops: machine has no compute threads");
  }
  const double per_thread_gops =
      kBaseGopsPerGhzThread * machine.ipc_factor *
      std::pow(machine.freq_ghz, app.freq_exponent) /
      std::pow(kRefFreqGhz, app.freq_exponent - 1.0);

  const double n_eff = amdahl_threads(machine.compute_threads, app.serial_fraction) *
                       skew_balance(machine.compute_threads, app.skew_sensitivity,
                                    traits.degree_skew);

  const double compute = per_thread_gops * 1e9 * n_eff;
  const double bandwidth = machine.mem_bw_gbs * 1e9 / app.bytes_per_op;
  return std::min(compute, bandwidth) * cache_amplification(machine, app, traits);
}

}  // namespace pglb
