#include "machine/machine_spec.hpp"

#include <cmath>
#include <stdexcept>

namespace pglb {

const char* to_string(MachineCategory category) {
  switch (category) {
    case MachineCategory::kComputeOptimized: return "compute-optimized";
    case MachineCategory::kGeneralPurpose: return "general-purpose";
    case MachineCategory::kMemoryOptimized: return "memory-optimized";
    case MachineCategory::kLocalServer: return "local-server";
  }
  return "unknown";
}

MachineSpec with_frequency(const MachineSpec& spec, double ghz) {
  if (ghz <= 0.0) throw std::invalid_argument("with_frequency: frequency must be positive");
  MachineSpec derated = spec;
  const double ratio = ghz / spec.freq_ghz;
  derated.freq_ghz = ghz;
  // Wimpy-node emulation: capping the clock also drops the uncore/prefetch
  // clocks and turbo headroom, so *effective random-access* bandwidth
  // collapses much faster than linearly.  This reproduces the paper's Case 3
  // observation that PR/CC/Coloring CCRs blow past the thread-count ratio
  // when the small machine is derated, while compute-bound TC only tracks
  // the clock (Sec. V-B3).
  derated.mem_bw_gbs = spec.mem_bw_gbs * std::pow(ratio, 4.0);
  derated.tdp_watts =
      spec.idle_watts + (spec.tdp_watts - spec.idle_watts) * ratio * ratio * ratio;
  derated.name = spec.name + "@" + std::to_string(ghz).substr(0, 3) + "GHz";
  return derated;
}

bool same_group(const MachineSpec& a, const MachineSpec& b) { return a == b; }

}  // namespace pglb
