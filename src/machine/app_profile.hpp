#pragma once
// Per-application resource-demand profiles.  Figure 2 of the paper shows that
// the four MLDM applications scale very differently with machine size — the
// whole motivation for profiling instead of reading core counts.  These
// profiles parameterise that diversity for the analytic performance model.

#include <optional>
#include <span>
#include <string>

namespace pglb {

enum class AppKind {
  // The paper's four evaluation applications (Sec. IV).
  kPageRank,
  kColoring,
  kConnectedComponents,
  kTriangleCount,
  // Extension apps (Sec. III-B: any special-purpose application can be
  // profiled and fit into the flow).
  kSssp,
  kKCore,
};

const char* to_string(AppKind kind);

/// Inverse of to_string(); nullopt on unknown names.
std::optional<AppKind> try_app_from_name(const std::string& name);

/// Inverse of to_string(); throws std::invalid_argument on unknown names.
AppKind app_from_name(const std::string& name);

/// Every AppKind in declaration order (paper's four, then extensions).
std::span<const AppKind> all_app_kinds();

struct AppProfile {
  std::string name;
  AppKind kind = AppKind::kPageRank;

  /// Amdahl serial fraction: per-superstep work that does not parallelise
  /// (scheduling, frontier management).
  double serial_fraction = 0.05;

  /// Bytes of memory traffic per work-unit.  Determines where the thread
  /// scaling hits the machine's bandwidth wall (PageRank saturates; Fig. 2).
  double bytes_per_op = 8.0;

  /// Cache amplification: extra throughput when the working set fits in LLC
  /// (Triangle Count's neighbour hash-sets; the sharp 4xlarge->8xlarge jump).
  double cache_amp = 0.0;
  /// Working set per million vertices, MB (compared against MachineSpec::llc_mb).
  double working_set_mb_per_mvertex = 0.0;

  /// Sensitivity of intra-machine thread balance to degree skew: a few
  /// ultra-high-degree vertices serialise threads.
  double skew_sensitivity = 0.0;

  /// Exponent on clock frequency.  1.0 = perfectly frequency-bound;
  /// latency-sensitive irregular apps degrade super-linearly when the clock
  /// (and with it the prefetch depth) drops.
  double freq_exponent = 1.0;

  /// Mirror-synchronisation message size (bytes per mirror per superstep).
  double bytes_per_mirror = 16.0;

  /// True = engine runs with per-superstep BSP barriers; false = asynchronous
  /// (Coloring in PowerGraph), machines only synchronise at the end.
  bool synchronous = true;
};

/// Calibrated profile for each application.
const AppProfile& profile_for(AppKind kind);

/// All profiles, paper's four first (Pagerank, Coloring, CC, TC), then
/// extensions (SSSP).
const AppProfile* all_profiles(std::size_t* count);

}  // namespace pglb
