#include "machine/app_profile.hpp"

#include <array>
#include <stdexcept>

namespace pglb {

const char* to_string(AppKind kind) {
  switch (kind) {
    case AppKind::kPageRank: return "pagerank";
    case AppKind::kColoring: return "coloring";
    case AppKind::kConnectedComponents: return "connected_components";
    case AppKind::kTriangleCount: return "triangle_count";
    case AppKind::kSssp: return "sssp";
    case AppKind::kKCore: return "kcore";
  }
  return "unknown";
}

namespace {

constexpr std::array<AppKind, 6> kAllAppKinds = {
    AppKind::kPageRank,  AppKind::kColoring, AppKind::kConnectedComponents,
    AppKind::kTriangleCount, AppKind::kSssp, AppKind::kKCore};

}  // namespace

std::optional<AppKind> try_app_from_name(const std::string& name) {
  for (const AppKind kind : kAllAppKinds) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

AppKind app_from_name(const std::string& name) {
  const auto kind = try_app_from_name(name);
  if (!kind) throw std::invalid_argument("unknown app '" + name + "'");
  return *kind;
}

std::span<const AppKind> all_app_kinds() { return kAllAppKinds; }

namespace {

// Calibration targets (shapes from Fig. 2 / Fig. 8a, baseline c4.xlarge):
//  - PageRank: speedup saturates between c4.4xlarge and c4.8xlarge
//    (bandwidth-bound: high bytes_per_op).
//  - Coloring / Connected Components: near-linear growth all the way up.
//  - Triangle Count: modest until 4xlarge, sharp jump at 8xlarge where the
//    neighbour sets start fitting in the doubled LLC (cache_amp).
std::array<AppProfile, 6> make_profiles() {
  AppProfile pagerank;
  pagerank.name = "pagerank";
  pagerank.kind = AppKind::kPageRank;
  pagerank.serial_fraction = 0.045;
  pagerank.bytes_per_op = 14.0;   // rank streaming: bandwidth-hungry
  pagerank.cache_amp = 0.0;
  pagerank.skew_sensitivity = 0.35;
  pagerank.freq_exponent = 1.2;   // latency/prefetch sensitive at low clocks
  pagerank.bytes_per_mirror = 6.0;
  pagerank.synchronous = true;

  AppProfile coloring;
  coloring.name = "coloring";
  coloring.kind = AppKind::kColoring;
  coloring.serial_fraction = 0.035;
  coloring.bytes_per_op = 12.0;
  coloring.cache_amp = 0.0;
  coloring.skew_sensitivity = 0.55;
  coloring.freq_exponent = 1.2;
  coloring.bytes_per_mirror = 4.0;
  coloring.synchronous = false;  // PowerGraph runs Coloring asynchronously

  AppProfile cc;
  cc.name = "connected_components";
  cc.kind = AppKind::kConnectedComponents;
  cc.serial_fraction = 0.035;
  cc.bytes_per_op = 9.5;
  cc.cache_amp = 0.0;
  cc.skew_sensitivity = 0.30;
  cc.freq_exponent = 1.2;
  cc.bytes_per_mirror = 6.0;
  cc.synchronous = true;

  AppProfile tc;
  tc.name = "triangle_count";
  tc.kind = AppKind::kTriangleCount;
  tc.serial_fraction = 0.11;
  tc.bytes_per_op = 5.0;          // intersection scans are cache-resident...
  tc.cache_amp = 1.7;             // ...once the hash sets fit in LLC
  tc.working_set_mb_per_mvertex = 9.0;
  tc.skew_sensitivity = 0.75;     // hub intersections serialise threads hard
  tc.freq_exponent = 1.05;        // compute-bound: tracks the clock
  tc.bytes_per_mirror = 10.0;     // ships neighbour lists
  tc.synchronous = true;

  AppProfile sssp;
  sssp.name = "sssp";
  sssp.kind = AppKind::kSssp;
  sssp.serial_fraction = 0.04;
  sssp.bytes_per_op = 9.0;        // frontier relaxations: CC-like traffic
  sssp.cache_amp = 0.0;
  sssp.skew_sensitivity = 0.30;
  sssp.freq_exponent = 1.2;
  sssp.bytes_per_mirror = 6.0;
  sssp.synchronous = true;

  AppProfile kcore;
  kcore.name = "kcore";
  kcore.kind = AppKind::kKCore;
  kcore.serial_fraction = 0.05;
  kcore.bytes_per_op = 10.0;      // h-index gathers: CC-like traffic
  kcore.cache_amp = 0.0;
  kcore.skew_sensitivity = 0.45;  // hubs recompute large h-indices
  kcore.freq_exponent = 1.2;
  kcore.bytes_per_mirror = 6.0;
  kcore.synchronous = true;

  return {pagerank, coloring, cc, tc, sssp, kcore};
}

const std::array<AppProfile, 6>& profiles() {
  static const std::array<AppProfile, 6> table = make_profiles();
  return table;
}

}  // namespace

const AppProfile& profile_for(AppKind kind) {
  for (const AppProfile& p : profiles()) {
    if (p.kind == kind) return p;
  }
  throw std::logic_error("profile_for: unknown AppKind");
}

const AppProfile* all_profiles(std::size_t* count) {
  if (count != nullptr) *count = profiles().size();
  return profiles().data();
}

}  // namespace pglb
