#pragma once
// Machine catalog — Table I of the paper: the six Amazon EC2 virtual-machine
// types and the two local Xeon servers, with the performance/energy model
// parameters calibrated for each (see perf_model.hpp for how they are used).

#include <span>
#include <string>

#include "machine/machine_spec.hpp"

namespace pglb {

/// Look up a machine by its Table I name: "c4.xlarge", "c4.2xlarge",
/// "m4.2xlarge", "r3.2xlarge", "c4.4xlarge", "c4.8xlarge",
/// "xeon_server_s", "xeon_server_l".  Throws std::out_of_range on unknown
/// names.
const MachineSpec& machine_by_name(const std::string& name);

/// All Table I machines, EC2 first, in paper order.
std::span<const MachineSpec> table1_machines();

/// The four compute-optimized EC2 sizes used in Fig. 2 / Fig. 8a, smallest
/// first (c4.xlarge, c4.2xlarge, c4.4xlarge, c4.8xlarge).
std::span<const MachineSpec> c4_family();

/// The three same-thread-count, different-category machines of Fig. 8b
/// (m4.2xlarge, c4.2xlarge, r3.2xlarge) with m4 first (the paper's baseline).
std::span<const MachineSpec> category_2xlarge_family();

}  // namespace pglb
