#pragma once
// Energy accounting — the substitute for the paper's Intel RAPL counters.
//
// A machine draws `tdp_watts` while executing (compute or communication) and
// `idle_watts` while parked at a BSP barrier waiting for stragglers.  The
// paper's energy savings (Sec. V-B2/B3) come precisely from shrinking that
// idle interval, so busy/idle integration over the virtual-time schedule
// captures the mechanism.

#include <span>
#include <vector>

#include "machine/machine_spec.hpp"

namespace pglb {

struct MachineEnergy {
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  double joules = 0.0;
};

class EnergyAccumulator {
 public:
  explicit EnergyAccumulator(std::vector<MachineSpec> machines);

  /// Record one barrier interval: machine m was busy for busy_s[m] seconds
  /// out of a window of `window_s` (the straggler's time); the rest is idle.
  void record_interval(std::span<const double> busy_s, double window_s);

  /// Record fully-independent (asynchronous) execution: each machine is busy
  /// busy_s[m] and idles until the global finish at window_s.
  void record_async(std::span<const double> busy_s, double window_s) {
    record_interval(busy_s, window_s);
  }

  const std::vector<MachineEnergy>& per_machine() const noexcept { return energy_; }
  double total_joules() const noexcept;
  double total_busy_seconds() const noexcept;
  double total_idle_seconds() const noexcept;

 private:
  std::vector<MachineSpec> machines_;
  std::vector<MachineEnergy> energy_;
};

}  // namespace pglb
