#include "machine/catalog.hpp"

#include <array>
#include <stdexcept>

namespace pglb {

namespace {

// Notes on calibration:
//  * hw_threads / compute_threads / cost_per_hour are Table I verbatim
//    (compute = hw - 2: PowerGraph reserves two logical cores for comm).
//    Xeon Server L's row is given as 12 cores in Sec. V-B3 ("the fast machine
//    has 12 cores"), so hw=12, compute=10; with S (hw=4, compute=2) this
//    makes the prior-work thread ratio 1:5 and the paper's measured CCRs
//    (~1:3.5 in Case 2) overload the big machine, as Sec. V-B2 describes.
//  * freq/ipc reproduce Fig. 8b: c4 (Haswell 2.9 GHz) ~1.2x over m4
//    (Broadwell 2.4 GHz); r3 (Ivy Bridge 2.5 GHz, large L3) ~1.1x.
//  * mem_bw_gbs is *effective random-access* bandwidth (graph workloads
//    gather-scatter; ~10-15% of streaming peak).  c4.8xlarge spans two
//    sockets, so its random-access bandwidth gains much less than 2x
//    (NUMA) — this produces PageRank's saturation in Fig. 2.
//  * llc_mb: proportional LLC slice; the two-socket 8xlarge roughly doubles
//    it, producing Triangle Count's sharp jump (Fig. 2 / 8a).
//  * tdp/idle watts: representative package+DRAM draw for energy accounting.
constexpr int kNumMachines = 8;

const std::array<MachineSpec, kNumMachines>& catalog() {
  static const std::array<MachineSpec, kNumMachines> machines = {{
      {.name = "c4.xlarge",
       .category = MachineCategory::kComputeOptimized,
       .hw_threads = 4,
       .compute_threads = 2,
       .cost_per_hour = 0.209,
       .freq_ghz = 2.9,
       .mem_gb = 7.5,
       .ipc_factor = 1.0,
       .mem_bw_gbs = 1.0,
       .llc_mb = 2.5,
       .tdp_watts = 45.0,
       .idle_watts = 18.0},
      {.name = "c4.2xlarge",
       .category = MachineCategory::kComputeOptimized,
       .hw_threads = 8,
       .compute_threads = 6,
       .cost_per_hour = 0.419,
       .freq_ghz = 2.9,
       .mem_gb = 15.0,
       .ipc_factor = 1.0,
       .mem_bw_gbs = 2.0,
       .llc_mb = 6.0,
       .tdp_watts = 75.0,
       .idle_watts = 28.0},
      {.name = "m4.2xlarge",
       .category = MachineCategory::kGeneralPurpose,
       .hw_threads = 8,
       .compute_threads = 6,
       .cost_per_hour = 0.479,
       .freq_ghz = 2.4,
       .mem_gb = 32.0,
       .ipc_factor = 1.0,
       .mem_bw_gbs = 2.0,
       .llc_mb = 7.0,
       .tdp_watts = 80.0,
       .idle_watts = 30.0},
      {.name = "r3.2xlarge",
       .category = MachineCategory::kMemoryOptimized,
       .hw_threads = 8,
       .compute_threads = 6,
       .cost_per_hour = 0.665,
       .freq_ghz = 2.5,
       .mem_gb = 61.0,
       .ipc_factor = 1.06,
       .mem_bw_gbs = 2.2,
       .llc_mb = 6.5,
       .tdp_watts = 85.0,
       .idle_watts = 32.0},
      {.name = "c4.4xlarge",
       .category = MachineCategory::kComputeOptimized,
       .hw_threads = 16,
       .compute_threads = 14,
       .cost_per_hour = 0.838,
       .freq_ghz = 2.9,
       .mem_gb = 30.0,
       .ipc_factor = 1.0,
       .mem_bw_gbs = 3.6,
       .llc_mb = 12.0,
       .tdp_watts = 130.0,
       .idle_watts = 45.0},
      {.name = "c4.8xlarge",
       .category = MachineCategory::kComputeOptimized,
       .hw_threads = 36,
       .compute_threads = 34,
       .cost_per_hour = 1.675,
       .freq_ghz = 2.9,
       .mem_gb = 60.0,
       .ipc_factor = 1.0,
       .mem_bw_gbs = 4.2,
       .llc_mb = 45.0,
       .tdp_watts = 290.0,
       .idle_watts = 95.0},
      {.name = "xeon_server_s",
       .category = MachineCategory::kLocalServer,
       .hw_threads = 4,
       .compute_threads = 2,
       .cost_per_hour = 0.0,
       .freq_ghz = 2.5,
       .mem_gb = 32.0,
       .ipc_factor = 1.0,
       .mem_bw_gbs = 1.0,
       .llc_mb = 5.0,
       .tdp_watts = 80.0,
       .idle_watts = 35.0},
      {.name = "xeon_server_l",
       .category = MachineCategory::kLocalServer,
       .hw_threads = 12,
       .compute_threads = 10,
       .cost_per_hour = 0.0,
       .freq_ghz = 2.5,
       .mem_gb = 64.0,
       // Slightly below the EC2 Haswells per-thread: an older-generation
       // E5; keeps the Case 2 CCR near the paper's ~1:3.5 against the 1:5
       // thread-count ratio.
       .ipc_factor = 0.88,
       .mem_bw_gbs = 3.2,
       .llc_mb = 24.0,
       .tdp_watts = 200.0,
       .idle_watts = 70.0},
  }};
  return machines;
}

}  // namespace

const MachineSpec& machine_by_name(const std::string& name) {
  for (const MachineSpec& m : catalog()) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("machine_by_name: unknown machine '" + name + "'");
}

std::span<const MachineSpec> table1_machines() { return catalog(); }

std::span<const MachineSpec> c4_family() {
  static const std::array<MachineSpec, 4> family = {
      machine_by_name("c4.xlarge"), machine_by_name("c4.2xlarge"),
      machine_by_name("c4.4xlarge"), machine_by_name("c4.8xlarge")};
  return family;
}

std::span<const MachineSpec> category_2xlarge_family() {
  static const std::array<MachineSpec, 3> family = {
      machine_by_name("m4.2xlarge"), machine_by_name("c4.2xlarge"),
      machine_by_name("r3.2xlarge")};
  return family;
}

}  // namespace pglb
