#pragma once
// Analytic machine-throughput model: the substitute for running on real EC2
// hardware.  Calibrated so that *relative* speeds reproduce the shapes the
// paper measured (Fig. 2, Fig. 8, the Case 1-3 CCRs), which is all the
// proxy-guided methodology depends on — CCR is a ratio, so the absolute ops/s
// scale cancels.
//
//   per_thread = kBaseGopsPerGhzThread * ipc * f^freq_exp / kRefFreq^(freq_exp-1)
//   n_eff      = amdahl(compute_threads, serial_fraction) * skew_balance
//   compute    = per_thread * n_eff
//   bandwidth  = mem_bw / bytes_per_op          (machine-wide random-access wall)
//   throughput = min(compute, bandwidth) * cache_amplification
//
// Workload coupling: traits describe the *paper-scale* workload (vertex count,
// footprint, degree skew) even when the host runs a scaled-down instance, so
// model behaviour is invariant to the CI scale factor.

#include "graph/stats.hpp"
#include "machine/app_profile.hpp"
#include "machine/machine_spec.hpp"

namespace pglb {

/// Structure-dependent inputs to the model, expressed at paper scale.
struct WorkloadTraits {
  double num_vertices_m = 1.0;  ///< millions of vertices
  double footprint_mb = 100.0;  ///< SNAP-text footprint
  double degree_skew = 1000.0;  ///< max out-degree / mean out-degree
  /// Work re-inflation factor (1/scale): operation counts measured on a
  /// scaled-down graph are multiplied by this before being converted to
  /// virtual time, so fixed costs (superstep latency) keep their paper-scale
  /// proportion and results are scale-invariant.
  double work_scale = 1.0;
};

/// Derive traits from measured stats of a (possibly scaled-down) graph.
/// `scale` is the down-scaling factor in (0, 1]; counts are re-inflated and
/// the max-degree skew is corrected by the power-law tail growth
/// (max degree ~ V^(1/(alpha-1))).
WorkloadTraits traits_from_stats(const GraphStats& stats, double scale = 1.0);

/// Absolute throughput scale.  Arbitrary but fixed: ~36 M work-units per
/// second per 3 GHz thread, in the ballpark of PowerGraph edge-processing
/// rates.
inline constexpr double kBaseGopsPerGhzThread = 0.012;
inline constexpr double kRefFreqGhz = 3.0;

/// Amdahl's law effective thread count.
double amdahl_threads(int threads, double serial_fraction);

/// Intra-machine balance factor in (0, 1]: heavy hubs serialise threads.
double skew_balance(int threads, double skew_sensitivity, double degree_skew);

/// Cache amplification factor >= 1 (logistic in LLC headroom over the
/// working set).
double cache_amplification(const MachineSpec& machine, const AppProfile& app,
                           const WorkloadTraits& traits);

/// Sustained work-units per second of `machine` running `app` on a workload
/// with `traits`, using all compute threads.
double throughput_ops(const MachineSpec& machine, const AppProfile& app,
                      const WorkloadTraits& traits);

}  // namespace pglb
