#include "autoscale/autoscaler.hpp"

#include <algorithm>

#include "machine/catalog.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace pglb {

Autoscaler::Autoscaler(AutoscalerOptions options, Registry* metrics)
    : options_(std::move(options)), metrics_(metrics) {}

void Autoscaler::set_gauge(std::string_view name, double value) {
  if (metrics_ != nullptr) metrics_->set_gauge(name, value);
}

void Autoscaler::count(std::string_view name) {
  if (metrics_ != nullptr) metrics_->count(name);
}

ScaleDecision Autoscaler::decide(const FleetSample& sample) {
  TraceSpan span("autoscale.decide", "autoscale");
  std::lock_guard<std::mutex> lock(mutex_);
  count("autoscale.samples");

  // Active = serving traffic.  Draining replicas neither carry load nor count
  // toward the replica bounds (their slot is already on its way out).
  std::size_t active = 0;
  double load = 0.0;
  for (const BackendSample& backend : sample.backends) {
    if (backend.state == BackendState::kDraining) continue;
    ++active;
    load += static_cast<double>(backend.inflight) +
            static_cast<double>(backend.queue_depth);
  }
  replicas_ = active;
  const double pressure = active > 0 ? load / static_cast<double>(active) : 0.0;

  if (pressure >= options_.pressure_threshold) {
    ++pressure_streak_;
    idle_streak_ = 0;
  } else if (pressure <= options_.idle_threshold) {
    ++idle_streak_;
    pressure_streak_ = 0;
  } else {
    pressure_streak_ = 0;
    idle_streak_ = 0;
  }
  set_gauge("autoscale.replicas", static_cast<double>(active));
  set_gauge("autoscale.pressure", pressure);
  set_gauge("autoscale.pressure_streak", pressure_streak_);
  set_gauge("autoscale.idle_streak", idle_streak_);

  // Rank the catalog every sample, not only when scaling: the pareto status
  // block tracks the live (cost, p99) tradeoff as the observed p99 moves.
  const double base_tput = throughput_ops(machine_by_name(options_.base_spec),
                                          profile_for(options_.policy.reference_app),
                                          options_.policy.traits);
  double capacity = 0.0;
  for (const BackendSample& backend : sample.backends) {
    if (backend.state == BackendState::kDraining) continue;
    capacity += backend.spec_name.empty()
                    ? base_tput
                    : throughput_ops(machine_by_name(backend.spec_name),
                                     profile_for(options_.policy.reference_app),
                                     options_.policy.traits);
  }
  last_ranking_ =
      rank_candidates(options_.policy, capacity, sample.p99_route_s);

  const auto hold = [&](const std::string& reason) -> ScaleDecision {
    count("autoscale.holds");
    last_decision_ = "hold:" + reason;
    return Hold{reason};
  };

  if (acted_ && sample.now_ms < last_action_ms_ + options_.cooldown_ms) {
    // Streaks keep accumulating through the cooldown — sustained pressure may
    // act the moment the window closes — but no action fires inside it.
    return hold("cooldown");
  }

  if (pressure_streak_ >= options_.sustain_samples) {
    if (active >= options_.max_replicas) return hold("at-max");
    if (last_ranking_.empty()) return hold("no-candidates");
    const ScaleCandidate& best = last_ranking_.front();
    pressure_streak_ = 0;
    idle_streak_ = 0;
    last_action_ms_ = sample.now_ms;
    acted_ = true;
    ++scale_ups_;
    count("autoscale.scale_ups");
    last_decision_ = "scale_up:" + best.spec.name;
    const double weight =
        base_tput > 0.0 ? best.throughput_ops / base_tput : 1.0;
    return ScaleUp{best.spec, weight};
  }

  if (idle_streak_ >= options_.idle_samples) {
    if (active <= options_.min_replicas) return hold("at-floor");
    // Scale in LIFO: the most recently added replica carries the fewest
    // long-lived cache keys (rendezvous re-homes only ITS keys on drain).
    // Only an idle replica may go — draining under in-flight work would turn
    // typed responses into transport failures.
    for (std::size_t i = sample.backends.size(); i-- > 0;) {
      const BackendSample& backend = sample.backends[i];
      if (backend.state == BackendState::kDraining) continue;
      if (backend.inflight > 0) continue;
      pressure_streak_ = 0;
      idle_streak_ = 0;
      last_action_ms_ = sample.now_ms;
      acted_ = true;
      ++drains_;
      count("autoscale.drains");
      last_decision_ = "drain:" + backend.name;
      return DrainReplica{backend.name, i};
    }
    return hold("idle-busy");
  }

  if (pressure_streak_ > 0) return hold("pressure");
  if (idle_streak_ > 0) return hold("idle");
  return hold("steady");
}

void Autoscaler::record_warming(std::size_t keys_owned, std::size_t keys_warmed) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++warm_passes_;
  warm_keys_owned_ += keys_owned;
  warm_keys_warmed_ += keys_warmed;
  if (metrics_ != nullptr && keys_warmed > 0) {
    metrics_->count("autoscale.keys_warmed", keys_warmed);
  }
}

std::string Autoscaler::status_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"policy\":\"";
  out += to_string(options_.policy.policy);
  out += "\",\"replicas\":";
  append_json_number(out, static_cast<double>(replicas_));
  out += ",\"min_replicas\":";
  append_json_number(out, static_cast<double>(options_.min_replicas));
  out += ",\"max_replicas\":";
  append_json_number(out, static_cast<double>(options_.max_replicas));
  out += ",\"pressure_streak\":";
  append_json_number(out, static_cast<double>(pressure_streak_));
  out += ",\"idle_streak\":";
  append_json_number(out, static_cast<double>(idle_streak_));
  out += ",\"scale_ups\":";
  append_json_number(out, static_cast<double>(scale_ups_));
  out += ",\"drains\":";
  append_json_number(out, static_cast<double>(drains_));
  out += ",\"last_decision\":";
  append_json_string(out, last_decision_);
  out += ",\"warming\":{\"passes\":";
  append_json_number(out, static_cast<double>(warm_passes_));
  out += ",\"keys_owned\":";
  append_json_number(out, static_cast<double>(warm_keys_owned_));
  out += ",\"keys_warmed\":";
  append_json_number(out, static_cast<double>(warm_keys_warmed_));
  out += "},\"pareto\":";
  out += pareto_json(options_.policy, last_ranking_);
  out.push_back('}');
  return out;
}

FleetSample sample_fleet(const FleetRegistry& fleet, const Registry& metrics) {
  FleetSample sample;
  sample.now_ms = fleet.now_ms();
  sample.p99_route_s = metrics.stage_quantile_seconds("router.route", 0.99);
  const std::size_t n = fleet.size();
  for (std::size_t i = 0; i < n; ++i) {
    const BackendStatus status = fleet.status(i);
    BackendSample backend;
    backend.name = status.name;
    backend.state = status.state;
    backend.inflight = status.inflight;
    backend.queue_depth = status.queue_depth;
    sample.backends.push_back(std::move(backend));
  }
  return sample;
}

}  // namespace pglb
