#pragma once
// Cost-aware scale-up policy (docs/AUTOSCALE.md): which instance type should
// the autoscaler add next?
//
// This is the paper's Fig. 11 cost-efficiency analysis run *online*.  Each
// rentable machine in the Table I catalog is scored against the fleet's
// observed load: predicted marginal throughput comes from the analytic
// performance model (machine/perf_model.hpp), dollars per hour from the
// catalog rate plus the energy model's full-utilisation wattage priced at a
// grid rate.  The resulting (cost, predicted p99) points feed the same
// pareto_frontier() the offline cost bench uses, so the live `pareto`
// metrics block is the Figure-style tradeoff, observable while scaling.
//
// Everything here is pure math over the catalog — deterministic, no clock,
// no processes — so ranking is unit-testable byte-for-byte.

#include <span>
#include <string>
#include <vector>

#include "machine/app_profile.hpp"
#include "machine/machine_spec.hpp"
#include "machine/perf_model.hpp"

namespace pglb {

enum class ScalePolicy {
  kCost,     ///< maximise predicted throughput per dollar (default)
  kLatency,  ///< minimise predicted fleet p99, cost as tie-break
};

const char* to_string(ScalePolicy policy) noexcept;

/// Inverse of to_string(); throws std::invalid_argument on unknown names
/// ("cost" | "latency").
ScalePolicy scale_policy_from_name(const std::string& name);

struct PolicyOptions {
  /// Application whose profile parameterises the throughput prediction.
  AppKind reference_app = AppKind::kPageRank;
  /// Workload shape at paper scale (perf_model.hpp).
  WorkloadTraits traits;
  /// Grid price used to convert the machine's TDP into $/hour on top of the
  /// rental rate ($0.12/kWh ~ US industrial average).
  double energy_usd_per_kwh = 0.12;
  ScalePolicy policy = ScalePolicy::kCost;
};

/// One scored catalog machine.
struct ScaleCandidate {
  MachineSpec spec;
  double usd_per_hour = 0.0;       ///< rental + energy-at-TDP
  double throughput_ops = 0.0;     ///< predicted marginal ops/s
  double predicted_p99_s = 0.0;    ///< fleet p99 if this machine joins
  double score = 0.0;              ///< policy-dependent, higher is better
  bool on_frontier = false;        ///< member of the (cost, p99) frontier
};

/// The machines the autoscaler may rent: catalog entries with a nonzero
/// hourly rate (the local Xeons cannot be spawned on demand).
std::vector<MachineSpec> rentable_catalog();

/// Effective $/hour of `spec` under `options`: rental rate plus TDP watts
/// priced at the grid rate.
double dollars_per_hour(const MachineSpec& spec, const PolicyOptions& options);

/// Score every rentable machine against the fleet's current state and sort
/// best-first (score desc, then $/hour asc, then name asc — a total order,
/// so ranking is deterministic).  `fleet_capacity_ops` is the summed model
/// throughput of the replicas already serving; `observed_p99_s` the router's
/// current route p99.  The queueing approximation: adding capacity C' to
/// capacity C scales the p99 by C / (C + C').
std::vector<ScaleCandidate> rank_candidates(const PolicyOptions& options,
                                            double fleet_capacity_ops,
                                            double observed_p99_s);

/// One-line JSON of the ranked candidates and their (cost, p99) frontier,
/// deterministic key order — the `pareto` block of the autoscaler's status:
///   {"policy":"cost","reference_app":"pagerank",
///    "frontier":[{"machine":...,"usd_per_hour":...,"predicted_p99_s":...,
///                 "throughput_ops":...},...],
///    "candidates":[...same shape with "score" and "on_frontier"...]}
std::string pareto_json(const PolicyOptions& options,
                        std::span<const ScaleCandidate> candidates);

}  // namespace pglb
