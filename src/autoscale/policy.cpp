#include "autoscale/policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "cost/pareto.hpp"
#include "machine/catalog.hpp"
#include "util/json.hpp"

namespace pglb {

const char* to_string(ScalePolicy policy) noexcept {
  switch (policy) {
    case ScalePolicy::kCost: return "cost";
    case ScalePolicy::kLatency: return "latency";
  }
  return "unknown";
}

ScalePolicy scale_policy_from_name(const std::string& name) {
  if (name == "cost") return ScalePolicy::kCost;
  if (name == "latency") return ScalePolicy::kLatency;
  throw std::invalid_argument("unknown scale policy: " + name);
}

std::vector<MachineSpec> rentable_catalog() {
  std::vector<MachineSpec> rentable;
  for (const MachineSpec& spec : table1_machines()) {
    if (spec.cost_per_hour > 0.0) rentable.push_back(spec);
  }
  return rentable;
}

double dollars_per_hour(const MachineSpec& spec, const PolicyOptions& options) {
  return spec.cost_per_hour +
         spec.tdp_watts / 1000.0 * options.energy_usd_per_kwh;
}

std::vector<ScaleCandidate> rank_candidates(const PolicyOptions& options,
                                            double fleet_capacity_ops,
                                            double observed_p99_s) {
  const AppProfile& app = profile_for(options.reference_app);
  std::vector<ScaleCandidate> candidates;
  for (const MachineSpec& spec : rentable_catalog()) {
    ScaleCandidate c;
    c.spec = spec;
    c.usd_per_hour = dollars_per_hour(spec, options);
    c.throughput_ops = throughput_ops(spec, app, options.traits);
    // M/M/1-flavoured capacity scaling: latency shrinks with the share of
    // total capacity the incumbent fleet keeps after this machine joins.
    c.predicted_p99_s =
        fleet_capacity_ops > 0.0
            ? observed_p99_s * fleet_capacity_ops /
                  (fleet_capacity_ops + c.throughput_ops)
            : 0.0;
    switch (options.policy) {
      case ScalePolicy::kCost:
        c.score = c.usd_per_hour > 0.0 ? c.throughput_ops / c.usd_per_hour : 0.0;
        break;
      case ScalePolicy::kLatency:
        // Predicted p99 is monotone-decreasing in throughput, so raw
        // throughput is the latency score even before any p99 is observed.
        c.score = c.throughput_ops;
        break;
    }
    candidates.push_back(std::move(c));
  }

  // Frontier over (cost up is bad, throughput up is good).  Predicted p99 is
  // a fixed monotone transform of throughput, so this IS the (cost, p99)
  // frontier the status block reports.
  std::vector<CostPoint> points;
  points.reserve(candidates.size());
  for (const ScaleCandidate& c : candidates) {
    CostPoint p;
    p.machine = c.spec.name;
    p.app = options.reference_app;
    p.runtime_seconds = c.predicted_p99_s;
    p.speedup = c.throughput_ops;
    p.cost_per_task = c.usd_per_hour;
    points.push_back(std::move(p));
  }
  for (const std::size_t index : pareto_frontier(points)) {
    candidates[index].on_frontier = true;
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const ScaleCandidate& a, const ScaleCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.usd_per_hour != b.usd_per_hour) {
                return a.usd_per_hour < b.usd_per_hour;
              }
              return a.spec.name < b.spec.name;
            });
  return candidates;
}

namespace {

void append_candidate(std::string& out, const ScaleCandidate& c,
                      bool with_score) {
  out += "{\"machine\":";
  append_json_string(out, c.spec.name);
  out += ",\"usd_per_hour\":";
  append_json_number(out, c.usd_per_hour);
  out += ",\"throughput_ops\":";
  append_json_number(out, c.throughput_ops);
  out += ",\"predicted_p99_s\":";
  append_json_number(out, c.predicted_p99_s);
  if (with_score) {
    out += ",\"score\":";
    append_json_number(out, c.score);
    out += ",\"on_frontier\":";
    out += c.on_frontier ? "true" : "false";
  }
  out.push_back('}');
}

}  // namespace

std::string pareto_json(const PolicyOptions& options,
                        std::span<const ScaleCandidate> candidates) {
  std::string out = "{\"policy\":\"";
  out += to_string(options.policy);
  out += "\",\"reference_app\":";
  append_json_string(out, to_string(options.reference_app));
  out += ",\"frontier\":[";
  bool first = true;
  for (const ScaleCandidate& c : candidates) {
    if (!c.on_frontier) continue;
    if (!first) out.push_back(',');
    first = false;
    append_candidate(out, c, /*with_score=*/false);
  }
  out += "],\"candidates\":[";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_candidate(out, candidates[i], /*with_score=*/true);
  }
  out += "]}";
  return out;
}

}  // namespace pglb
