#pragma once
// Closed-loop, cost-aware replica autoscaler (docs/AUTOSCALE.md).
//
// The control loop is deliberately split in two:
//  * decide() — pure state machine over FleetSample snapshots.  Time arrives
//    IN the sample (now_ms), never from a wall clock, so unit tests drive
//    hysteresis, cooldown, and bounds on a virtual clock with zero processes
//    (the same idiom as FleetOptions::clock_ms and BreakerOptions::clock_ms).
//  * the actuator — pglb_router's controller thread, which samples the fleet,
//    calls decide(), and turns ScaleUp/Drain into spawn / SIGTERM-drain using
//    the machinery the fleet smoke already exercises.  Rendezvous hashing
//    guarantees a drained replica's keys (and only its keys) re-home.
//
// Hysteresis: pressure (mean in-flight + shed queue depth per active replica)
// must exceed the scale-up threshold for `sustain_samples` consecutive
// samples before a ScaleUp is emitted, idle likewise for `idle_samples`
// before a Drain, and any action opens a cooldown window during which the
// loop holds.  Scale-ups pick the best machine under the configured cost
// policy (autoscale/policy.hpp) and report the live (cost, p99) Pareto
// frontier alongside the decision.

#include <cstdint>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "autoscale/policy.hpp"
#include "fleet/registry.hpp"
#include "obs/registry.hpp"

namespace pglb {

/// One backend as the sampler saw it.
struct BackendSample {
  std::string name;
  std::string spec_name;  ///< catalog machine this replica models ("" = base)
  BackendState state = BackendState::kUp;
  std::uint64_t inflight = 0;     ///< router attempts launched, unharvested
  std::uint64_t queue_depth = 0;  ///< depth from the last shed response
};

/// One control-loop observation.  now_ms is the loop's only notion of time.
struct FleetSample {
  std::uint64_t now_ms = 0;
  double p99_route_s = 0.0;  ///< router.route p99 from the obs registry
  std::vector<BackendSample> backends;
};

struct ScaleUp {
  MachineSpec spec;     ///< catalog machine to add
  double weight = 1.0;  ///< rendezvous weight (throughput relative to base)
};

struct DrainReplica {
  std::string backend;    ///< name of the replica to drain
  std::size_t index = 0;  ///< its position in the sample's backend list
};

struct Hold {
  std::string reason;  ///< "cooldown" | "pressure" | "idle-busy" | "steady" ...
};

using ScaleDecision = std::variant<Hold, ScaleUp, DrainReplica>;

struct AutoscalerOptions {
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 4;
  /// Mean (inflight + queue_depth) per active replica at or above which a
  /// sample counts as pressure.
  double pressure_threshold = 4.0;
  /// ... at or below which a sample counts as idle.
  double idle_threshold = 0.5;
  /// Consecutive pressure samples before a ScaleUp.
  std::uint32_t sustain_samples = 3;
  /// Consecutive idle samples before a Drain.
  std::uint32_t idle_samples = 5;
  /// Quiet window after any action, in sample-clock milliseconds.
  std::uint64_t cooldown_ms = 2'000;
  /// Catalog machine the floor replicas are assumed to be (weight baseline
  /// and capacity estimate for spec-less backends).
  std::string base_spec = "c4.2xlarge";
  PolicyOptions policy;
};

class Autoscaler {
 public:
  /// Counters/gauges land in `metrics` (may be null).
  explicit Autoscaler(AutoscalerOptions options, Registry* metrics = nullptr);

  /// One control-loop step.  Pure in the sample: same sequence of samples,
  /// same sequence of decisions.  Thread-safe (status_json may race it).
  ScaleDecision decide(const FleetSample& sample);

  /// One-line JSON status with deterministic key order, spliced into the
  /// router's metrics responses as the "autoscale" block:
  ///   {"policy":...,"replicas":N,"min":...,"max":...,
  ///    "pressure_streak":...,"idle_streak":...,"last_decision":...,
  ///    "scale_ups":...,"drains":...,"warming":{...},"pareto":{...}}
  std::string status_json() const;

  /// The actuator reports each peer-warming pass it ran after a scale-up or
  /// rejoin (docs/PERSIST.md): `keys_owned` keys rendezvous-ranked to the
  /// newcomer, `keys_warmed` of them prefetched ok.  Feeds the "warming"
  /// status block and the autoscale.keys_warmed counter.
  void record_warming(std::size_t keys_owned, std::size_t keys_warmed);

  const AutoscalerOptions& options() const noexcept { return options_; }

 private:
  void set_gauge(std::string_view name, double value);
  void count(std::string_view name);

  AutoscalerOptions options_;
  Registry* metrics_;

  mutable std::mutex mutex_;
  std::uint32_t pressure_streak_ = 0;
  std::uint32_t idle_streak_ = 0;
  std::uint64_t last_action_ms_ = 0;
  bool acted_ = false;  ///< last_action_ms_ is meaningful
  std::size_t replicas_ = 0;
  std::string last_decision_ = "none";
  std::uint64_t scale_ups_ = 0;
  std::uint64_t drains_ = 0;
  std::uint64_t warm_passes_ = 0;
  std::uint64_t warm_keys_owned_ = 0;
  std::uint64_t warm_keys_warmed_ = 0;
  std::vector<ScaleCandidate> last_ranking_;
};

/// Build a FleetSample from the live registry + obs metrics: state, inflight
/// and queue depth per backend plus the route p99.  spec_name is left empty —
/// the actuator, which knows what it spawned, fills it in.
FleetSample sample_fleet(const FleetRegistry& fleet, const Registry& metrics);

}  // namespace pglb
