#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/json.hpp"

namespace pglb {

namespace {

constexpr int kHostPid = 1;
constexpr int kVirtualPid = 2;

void append_metadata(std::string& out, int pid, const char* process_name) {
  out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
  append_json_number(out, pid);
  out += ",\"tid\":0,\"args\":{\"name\":";
  append_json_string(out, process_name);
  out += "}}";
}

}  // namespace

std::string chrome_trace_json(std::span<const SpanEvent> events) {
  std::vector<SpanEvent> sorted(events.begin(), events.end());
  std::sort(sorted.begin(), sorted.end(), [](const SpanEvent& a, const SpanEvent& b) {
    const int pid_a = a.vtrack < 0 ? kHostPid : kVirtualPid;
    const int pid_b = b.vtrack < 0 ? kHostPid : kVirtualPid;
    if (pid_a != pid_b) return pid_a < pid_b;
    const std::uint32_t tid_a = a.vtrack < 0 ? a.tid : static_cast<std::uint32_t>(a.vtrack);
    const std::uint32_t tid_b = b.vtrack < 0 ? b.tid : static_cast<std::uint32_t>(b.vtrack);
    if (tid_a != tid_b) return tid_a < tid_b;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    // Longer span first so nested children follow their parent.
    const std::uint64_t dur_a = a.end_ns - a.start_ns;
    const std::uint64_t dur_b = b.end_ns - b.start_ns;
    if (dur_a != dur_b) return dur_a > dur_b;
    return std::string_view(a.name) < std::string_view(b.name);
  });

  std::string out = "{\"traceEvents\":[";
  append_metadata(out, kHostPid, "pglb host");
  out.push_back(',');
  append_metadata(out, kVirtualPid, "pglb virtual cluster");
  for (const SpanEvent& event : sorted) {
    out.push_back(',');
    out += "{\"name\":";
    append_json_string(out, event.name != nullptr ? event.name : "?");
    out += ",\"cat\":";
    append_json_string(out, event.category != nullptr ? event.category : "pglb");
    out += ",\"ph\":\"X\",\"pid\":";
    append_json_number(out, event.vtrack < 0 ? kHostPid : kVirtualPid);
    out += ",\"tid\":";
    append_json_number(out, event.vtrack < 0 ? static_cast<double>(event.tid)
                                             : static_cast<double>(event.vtrack));
    out += ",\"ts\":";
    append_json_number(out, static_cast<double>(event.start_ns) / 1e3);
    out += ",\"dur\":";
    const std::uint64_t dur =
        event.end_ns >= event.start_ns ? event.end_ns - event.start_ns : 0;
    append_json_number(out, static_cast<double>(dur) / 1e3);
    if (event.arg != kTraceNoArg || event.sarg != nullptr) {
      out += ",\"args\":{";
      if (event.arg != kTraceNoArg) {
        out += "\"v\":";
        append_json_number(out, static_cast<double>(event.arg));
        if (event.sarg != nullptr) out.push_back(',');
      }
      if (event.sarg != nullptr) {
        out += "\"label\":";
        append_json_string(out, event.sarg);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  const std::vector<SpanEvent> events = Tracer::instance().snapshot();
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open trace file " + path);
  file << chrome_trace_json(events) << "\n";
  if (!file) throw std::runtime_error("failed writing trace file " + path);
}

}  // namespace pglb
