#pragma once
// Process-wide metrics registry: named counters, gauges, and latency
// histograms, dumpable on demand as deterministic JSON (sorted names, fixed
// key order).  This generalizes the old service-only ServiceMetrics — the
// planning service is now a thin client of this registry, and every pipeline
// stage (profiler, partitioners, engine, thread pool) reports into the
// process-wide instance returned by global_registry().
//
// Latencies are recorded into geometric buckets (8 per octave, ~9% relative
// resolution) layered over util/histogram's ExactHistogram — bucket indices
// are small integers, so the exact histogram machinery applies unchanged
// while a 1 us .. 1000 s range needs only ~240 buckets.
//
// Naming scheme (docs/OBSERVABILITY.md): dot-separated "subsystem.metric"
// for pipeline metrics ("pool.fanouts", "profiler.cells"); the service keeps
// its original flat names ("requests_total") for protocol stability.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"
#include "util/stopwatch.hpp"

namespace pglb {

/// One occupied latency bucket: geometric index, inclusive lower bound in
/// microseconds, and observation count — the unit of the full-distribution
/// export (snapshots carry every occupied bucket, not just point quantiles).
struct LatencyBucket {
  std::uint64_t bucket = 0;
  double floor_us = 0.0;
  std::uint64_t count = 0;
};

class LatencyHistogram {
 public:
  void record_seconds(double seconds);

  std::uint64_t count() const noexcept { return buckets_.total(); }

  /// Latency at quantile q in [0, 1], as the representative (geometric lower
  /// bound) of the bucket containing it.  0 when empty.
  double quantile_seconds(double q) const;

  /// Sparse distribution: every occupied bucket in ascending index order.
  std::vector<LatencyBucket> nonzero_buckets() const;

  const ExactHistogram& buckets() const noexcept { return buckets_; }

  /// Bucket mapping, exposed for tests: microseconds -> index and back.
  /// Defined for the full double range: zero and negative inputs land in
  /// bucket 0 and sub-microsecond inputs in the first octave (buckets 0-7) —
  /// the histogram never rejects a sample.
  static std::uint64_t bucket_of(double microseconds);
  static double bucket_floor_us(std::uint64_t bucket);

 private:
  ExactHistogram buckets_;  ///< value = geometric bucket index
};

class Registry {
 public:
  /// Add `delta` to counter `name` (created on first use).
  void count(std::string_view name, std::uint64_t delta = 1);

  /// Set gauge `name` to `value` (created on first use).
  void set_gauge(std::string_view name, double value);

  /// Record one latency observation for stage `stage`.
  void observe(std::string_view stage, double seconds);

  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;

  /// Latency at quantile `q` for stage `stage`, or 0 when the stage has no
  /// observations yet.  Admission control uses p50("total") to size its
  /// suggested retry-after.
  double stage_quantile_seconds(std::string_view stage, double q) const;

  /// Full latency distribution of `stage` as its occupied buckets (empty for
  /// unknown stages) — what the fleet's per-backend latency reports and the
  /// cost/Pareto benches plot instead of point quantiles.
  std::vector<LatencyBucket> stage_buckets(std::string_view stage) const;

  /// Sorted names of every stage with at least one observation.
  std::vector<std::string> stage_names() const;

  /// Sorted (name, value) snapshot of every counter — the stable order
  /// pglb_loadgen prints registry deltas in.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;

  /// Snapshot as one-line JSON with deterministic key ordering (names sorted,
  /// fixed key order inside each stage):
  ///   {"counters":{...},"gauges":{...},
  ///    "stages":{"plan":{"count":N,"p50_us":...,...}}}
  /// Extra top-level fields (e.g. cache stats) can be injected by the caller
  /// via `extra`, a pre-serialized JSON fragment like "\"cache\":{...}".
  /// `include_buckets` appends the full distribution to every stage as
  /// "buckets":[[floor_us,count],...] (occupied buckets only); default off so
  /// the classic quantile-only snapshot stays byte-identical.
  std::string to_json(const std::string& extra = "",
                      bool include_buckets = false) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, LatencyHistogram, std::less<>> stages_;
};

/// The process-wide registry every pipeline stage reports into.
Registry& global_registry();

/// RAII stage timer: records the elapsed host time into `registry` when it
/// goes out of scope (no-op when registry is null).
class ScopedTimer {
 public:
  ScopedTimer(Registry* registry, std::string_view stage)
      : registry_(registry), stage_(stage) {}
  ~ScopedTimer() {
    if (registry_ != nullptr) registry_->observe(stage_, watch_.seconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry* registry_;
  std::string stage_;
  Stopwatch watch_;
};

}  // namespace pglb
