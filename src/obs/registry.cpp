#include "obs/registry.hpp"

#include <cmath>

#include "util/json.hpp"

namespace pglb {

namespace {
constexpr double kBucketsPerOctave = 8.0;
}

std::uint64_t LatencyHistogram::bucket_of(double microseconds) {
  if (!(microseconds > 0.0)) return 0;
  const double bucket = std::floor(kBucketsPerOctave * std::log2(1.0 + microseconds));
  return bucket > 0.0 ? static_cast<std::uint64_t>(bucket) : 0;
}

double LatencyHistogram::bucket_floor_us(std::uint64_t bucket) {
  return std::exp2(static_cast<double>(bucket) / kBucketsPerOctave) - 1.0;
}

void LatencyHistogram::record_seconds(double seconds) {
  buckets_.add(bucket_of(seconds * 1e6));
}

std::vector<LatencyBucket> LatencyHistogram::nonzero_buckets() const {
  std::vector<LatencyBucket> out;
  const auto& counts = buckets_.counts();
  for (std::uint64_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    out.push_back({b, bucket_floor_us(b), counts[b]});
  }
  return out;
}

double LatencyHistogram::quantile_seconds(double q) const {
  const std::uint64_t total = buckets_.total();
  if (total == 0) return 0.0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const auto rank = static_cast<std::uint64_t>(std::ceil(clamped * total));
  std::uint64_t seen = 0;
  const auto& counts = buckets_.counts();
  for (std::uint64_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= rank) return bucket_floor_us(b) / 1e6;
  }
  return bucket_floor_us(buckets_.max_value()) / 1e6;
}

void Registry::count(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[std::string(name)] += delta;
}

void Registry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[std::string(name)] = value;
}

void Registry::observe(std::string_view stage, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  stages_[std::string(stage)].record_seconds(seconds);
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double Registry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

double Registry::stage_quantile_seconds(std::string_view stage, double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stages_.find(stage);
  return it != stages_.end() ? it->second.quantile_seconds(q) : 0.0;
}

std::vector<LatencyBucket> Registry::stage_buckets(std::string_view stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stages_.find(stage);
  return it != stages_.end() ? it->second.nonzero_buckets()
                             : std::vector<LatencyBucket>{};
}

std::vector<std::string> Registry::stage_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& [name, histogram] : stages_) {
    if (histogram.count() > 0) names.push_back(name);
  }
  return names;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::string Registry::to_json(const std::string& extra, bool include_buckets) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    append_json_number(out, static_cast<double>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    append_json_number(out, value);
  }
  out += "},\"stages\":{";
  first = true;
  for (const auto& [stage, histogram] : stages_) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, stage);
    out += ":{\"count\":";
    append_json_number(out, static_cast<double>(histogram.count()));
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"p50_us", 0.50},
          std::pair<const char*, double>{"p90_us", 0.90},
          std::pair<const char*, double>{"p99_us", 0.99}}) {
      out += ",\"";
      out += label;
      out += "\":";
      append_json_number(out, std::round(histogram.quantile_seconds(q) * 1e6));
    }
    if (include_buckets) {
      // Sparse [floor_us, count] pairs: the whole distribution, ascending.
      out += ",\"buckets\":[";
      bool first_bucket = true;
      for (const LatencyBucket& bucket : histogram.nonzero_buckets()) {
        if (!first_bucket) out.push_back(',');
        first_bucket = false;
        out.push_back('[');
        append_json_number(out, bucket.floor_us);
        out.push_back(',');
        append_json_number(out, static_cast<double>(bucket.count));
        out.push_back(']');
      }
      out.push_back(']');
    }
    out.push_back('}');
  }
  out.push_back('}');
  if (!extra.empty()) {
    out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

Registry& global_registry() {
  // Leaked so threads outliving main() (detached pool workers during
  // teardown) can never touch a destroyed registry.
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace pglb
