#pragma once
// Chrome trace-event export: serialize a span snapshot into the JSON object
// format that chrome://tracing and Perfetto load directly.  Host spans land
// under pid 1 ("pglb host", one tid per emitting thread); virtual-cluster
// spans bridged from ExecReport land under pid 2 ("pglb virtual cluster",
// one tid per synthetic track).

#include <span>
#include <string>

#include "obs/trace.hpp"

namespace pglb {

/// Serialize `events` as a complete Chrome trace-event JSON document.
/// Events are sorted by (pid, tid, ts, dur descending, name) so the output
/// is stable for a given span set; ts/dur are microseconds.
std::string chrome_trace_json(std::span<const SpanEvent> events);

/// Snapshot the process-wide tracer and write it to `path`.  Throws
/// std::runtime_error if the file cannot be written.
void write_chrome_trace(const std::string& path);

}  // namespace pglb
