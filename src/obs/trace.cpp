#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

namespace pglb {

namespace {

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled(env_flag("PGLB_TRACE"));
  return enabled;
}

std::atomic<bool>& ring_reuse_flag() {
  static std::atomic<bool> enabled(env_flag("PGLB_TRACE_RING"));
  return enabled;
}

}  // namespace

bool tracing_enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool enabled) noexcept {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

bool trace_ring_reuse() noexcept {
  return ring_reuse_flag().load(std::memory_order_relaxed);
}

void set_trace_ring_reuse(bool enabled) noexcept {
  ring_reuse_flag().store(enabled, std::memory_order_relaxed);
}

const char* intern_trace_label(std::string_view text) {
  // Leaked pool (same lifetime argument as the Tracer singleton): pointers
  // into it stay valid for spans emitted from threads outliving main().
  // std::unordered_set<std::string> never moves its element storage, so the
  // returned c_str() pointers are stable across rehashes.
  static std::mutex* mutex = new std::mutex();
  static auto* pool = new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(*mutex);
  return pool->emplace(text).first->c_str();
}

/// Per-thread span store: a grow-only linked list of fixed-size chunks.  The
/// owning thread is the only writer; it publishes each record with a release
/// store of `published`, so readers that acquire `published` see every slot
/// (and every chunk link) written before it.  Chunks are never freed, and in
/// the default mode never reused — clear() only moves the `cleared`
/// watermark — which is what makes concurrent snapshots race-free without any
/// reader/writer lock.
///
/// Ring reuse (opt-in, trace_ring_reuse()): clear() additionally sets
/// `rewind_pending`, and the owner rewinds to its first chunk at the start of
/// its next append.  Safety argument: clear() sets cleared = published under
/// the tracer's buffers_mutex before scheduling the rewind, so every reader
/// (which also holds buffers_mutex) either finishes before the rewind is
/// scheduled or observes published <= cleared and never touches the slots the
/// owner is about to overwrite.  The rewind stores published = 0 BEFORE
/// cleared = 0; a reader that later acquires published = k therefore also
/// sees cleared = 0 and reads only the k freshly written slots.
struct Tracer::ThreadBuffer {
  static constexpr std::uint64_t kChunkSpans = 1024;

  struct Chunk {
    SpanRecord spans[kChunkSpans];
    std::atomic<Chunk*> next{nullptr};
  };

  explicit ThreadBuffer(std::uint32_t thread_id) : tid(thread_id) {}
  ~ThreadBuffer() {
    Chunk* chunk = head.load(std::memory_order_acquire);
    while (chunk != nullptr) {
      Chunk* next = chunk->next.load(std::memory_order_acquire);
      delete chunk;
      chunk = next;
    }
  }

  void append(const SpanRecord& record) {
    if (rewind_pending.load(std::memory_order_relaxed)) rewind();
    const std::uint64_t n = owner_count;
    if (n >= kMaxSpansPerThread) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (n % kChunkSpans == 0) {
      if (n == 0) {
        // First span ever, or first span after a rewind: (re)start at the
        // head chunk.  Only the owner ever stores head, so a relaxed
        // same-thread load is sufficient.
        Chunk* first = head.load(std::memory_order_relaxed);
        if (first == nullptr) {
          first = new Chunk();
          head.store(first, std::memory_order_release);
        }
        owner_tail = first;
      } else {
        // Reuse the next chunk when a previous lap already allocated it.
        Chunk* next = owner_tail->next.load(std::memory_order_relaxed);
        if (next == nullptr) {
          next = new Chunk();
          owner_tail->next.store(next, std::memory_order_release);
        }
        owner_tail = next;
      }
    }
    owner_tail->spans[n % kChunkSpans] = record;
    owner_count = n + 1;
    published.store(n + 1, std::memory_order_release);
  }

  /// Owner-thread response to a ring-mode clear(): restart at the head chunk
  /// with a fresh span and drop budget.  Store order (published before
  /// cleared) is what keeps concurrent snapshots off the recycled slots.
  void rewind() {
    rewind_pending.store(false, std::memory_order_relaxed);
    owner_count = 0;
    owner_tail = nullptr;  // re-established by the n == 0 branch of append()
    published.store(0, std::memory_order_release);
    cleared.store(0, std::memory_order_release);
    dropped.store(0, std::memory_order_relaxed);
    dropped_cleared.store(0, std::memory_order_relaxed);
  }

  const std::uint32_t tid;

  // Owner-thread state (no concurrent access).
  std::uint64_t owner_count = 0;
  Chunk* owner_tail = nullptr;

  // Shared with readers.
  std::atomic<Chunk*> head{nullptr};
  std::atomic<std::uint64_t> published{0};
  std::atomic<std::uint64_t> cleared{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> dropped_cleared{0};
  std::atomic<bool> rewind_pending{false};
};

struct Tracer::Impl {
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  mutable std::mutex buffers_mutex;  ///< guards the buffer list, not the buffers
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

Tracer::Tracer() : impl_(new Impl()) {}

Tracer& Tracer::instance() {
  // Leaked: spans may be emitted from threads that outlive main()'s statics.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::uint64_t Tracer::now_ns() const noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - impl_->epoch)
                                        .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* buffer = [this] {
    std::lock_guard<std::mutex> lock(impl_->buffers_mutex);
    const auto tid = static_cast<std::uint32_t>(impl_->buffers.size());
    impl_->buffers.push_back(std::make_unique<ThreadBuffer>(tid));
    return impl_->buffers.back().get();
  }();
  return *buffer;
}

void Tracer::emit(const SpanRecord& record) { local_buffer().append(record); }

void Tracer::emit_complete(const char* name, const char* category,
                           std::uint64_t start_ns, std::uint64_t end_ns,
                           std::uint64_t arg, std::int32_t vtrack,
                           const char* sarg) {
  if (!tracing_enabled()) return;
  SpanRecord record;
  record.name = name;
  record.category = category;
  record.start_ns = start_ns;
  record.end_ns = end_ns;
  record.arg = arg;
  record.vtrack = vtrack;
  record.sarg = sarg;
  emit(record);
}

std::vector<SpanEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->buffers_mutex);
  std::vector<SpanEvent> events;
  for (const auto& buffer : impl_->buffers) {
    const std::uint64_t published = buffer->published.load(std::memory_order_acquire);
    const std::uint64_t cleared = buffer->cleared.load(std::memory_order_acquire);
    if (published <= cleared) continue;
    events.reserve(events.size() + (published - cleared));
    ThreadBuffer::Chunk* chunk = buffer->head.load(std::memory_order_acquire);
    for (std::uint64_t i = 0; i < published && chunk != nullptr;
         chunk = chunk->next.load(std::memory_order_acquire)) {
      const std::uint64_t in_chunk =
          std::min(published - i, ThreadBuffer::kChunkSpans);
      for (std::uint64_t s = 0; s < in_chunk; ++s, ++i) {
        if (i < cleared) continue;
        SpanEvent event;
        static_cast<SpanRecord&>(event) = chunk->spans[s];
        event.tid = buffer->tid;
        events.push_back(event);
      }
    }
  }
  return events;
}

std::uint64_t Tracer::spans_recorded() const {
  std::lock_guard<std::mutex> lock(impl_->buffers_mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : impl_->buffers) {
    const std::uint64_t published = buffer->published.load(std::memory_order_acquire);
    const std::uint64_t cleared = buffer->cleared.load(std::memory_order_acquire);
    total += published > cleared ? published - cleared : 0;
  }
  return total;
}

std::uint64_t Tracer::spans_dropped() const {
  std::lock_guard<std::mutex> lock(impl_->buffers_mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : impl_->buffers) {
    const std::uint64_t dropped = buffer->dropped.load(std::memory_order_relaxed);
    const std::uint64_t cleared = buffer->dropped_cleared.load(std::memory_order_relaxed);
    total += dropped > cleared ? dropped - cleared : 0;
  }
  return total;
}

void Tracer::clear() {
  const bool ring = trace_ring_reuse();
  std::lock_guard<std::mutex> lock(impl_->buffers_mutex);
  for (const auto& buffer : impl_->buffers) {
    buffer->cleared.store(buffer->published.load(std::memory_order_acquire),
                          std::memory_order_release);
    buffer->dropped_cleared.store(buffer->dropped.load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
    // Ring mode: ask the owner to restart at its first chunk on its next
    // span, replenishing its capacity (see the ThreadBuffer safety note).
    if (ring) buffer->rewind_pending.store(true, std::memory_order_relaxed);
  }
}

}  // namespace pglb
