#pragma once
// Low-overhead span tracer: RAII scoped spans written to per-thread buffers
// (no lock on the hot path), drained on demand into Chrome trace-event JSON
// (obs/chrome_trace.hpp) loadable in chrome://tracing or Perfetto.
//
// Cost model:
//  * Compiled out: -DPGLB_DISABLE_TRACING turns every PGLB_TRACE_SPAN macro
//    into nothing; the runtime API below stays link-compatible.
//  * Runtime disabled (the default): one relaxed atomic load per span.
//  * Enabled: a steady_clock read at scope entry/exit plus one slot write
//    into the emitting thread's chunked buffer — the only synchronization is
//    a release store of the buffer's published count (chunk allocation, every
//    kChunkSpans spans, takes a short buffer-local mutex).
//
// Enable at runtime with set_tracing_enabled(true) or the PGLB_TRACE
// environment variable (any value except "" and "0").
//
// Long-running sessions: per-thread capacity is a fixed kMaxSpansPerThread
// and clear() normally only moves a watermark, so a day-long traced service
// that periodically flushes eventually drops everything.  Opt in to
// ring-style chunk reuse with set_trace_ring_reuse(true) (or PGLB_TRACE_RING)
// and clear() also schedules a rewind: each emitting thread, on its next
// span, rewinds to its first chunk and overwrites — capacity is replenished
// and memory stays bounded by the chunks already allocated.
//
// Tracing is purely observational: spans record what happened, they never
// feed back into any computed value — determinism goldens hold bit-for-bit
// with tracing on or off at any thread count
// (tests/test_obs_trace.cpp pins this).
//
// Span names and categories must be string literals (or otherwise outlive
// the tracer): records store the pointer, not a copy, to keep the hot path
// allocation-free.

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pglb {

inline constexpr std::uint64_t kTraceNoArg = ~std::uint64_t{0};

/// One completed span.  Host spans (vtrack < 0) carry nanoseconds since the
/// tracer epoch on the emitting thread; virtual spans (vtrack >= 0) carry
/// virtual-cluster nanoseconds on a synthetic track (see
/// ExecReport bridging in engine/exec_report.hpp).
struct SpanRecord {
  const char* name = nullptr;      ///< static storage required
  const char* category = nullptr;  ///< static storage required
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t arg = kTraceNoArg;  ///< optional numeric payload (kTraceNoArg = none)
  const char* sarg = nullptr;       ///< optional string payload; static storage
                                    ///< required (literal or intern_trace_label)
  std::int32_t vtrack = -1;         ///< -1 = host span on the emitting thread
};

/// Snapshot element: the record plus the stable id of the emitting thread.
struct SpanEvent : SpanRecord {
  std::uint32_t tid = 0;
};

/// Global runtime switch (process-wide, lazily seeded from PGLB_TRACE).
bool tracing_enabled() noexcept;
void set_tracing_enabled(bool enabled) noexcept;

/// Ring-reuse switch (process-wide, lazily seeded from PGLB_TRACE_RING).
/// While enabled, Tracer::clear() replenishes per-thread span capacity by
/// scheduling a chunk rewind instead of just moving the watermark.
bool trace_ring_reuse() noexcept;
void set_trace_ring_reuse(bool enabled) noexcept;

/// Intern a dynamic string for use as a span's string arg.  Returns a stable,
/// process-lifetime pointer; repeated calls with equal text return the same
/// pointer.  Intended for bounded label sets (backend names, partitioner
/// shapes) — do NOT intern unbounded per-request data, the pool never shrinks.
const char* intern_trace_label(std::string_view text);

class Tracer {
 public:
  /// The process-wide tracer (leaked singleton: safe to emit from any thread
  /// at any point of the process lifetime).
  static Tracer& instance();

  /// Nanoseconds since the tracer epoch (steady clock, monotonic).
  std::uint64_t now_ns() const noexcept;

  /// Record one completed span into the calling thread's buffer.  Lock-free;
  /// drops (and counts) the span once the per-thread capacity is exhausted.
  void emit(const SpanRecord& record);

  /// Convenience: emit with explicit timestamps if tracing is enabled.
  void emit_complete(const char* name, const char* category,
                     std::uint64_t start_ns, std::uint64_t end_ns,
                     std::uint64_t arg = kTraceNoArg, std::int32_t vtrack = -1,
                     const char* sarg = nullptr);

  /// All spans published since the last clear(), across every thread that
  /// ever emitted.  Safe to call concurrently with emission: a concurrent
  /// span is either fully included or not at all.
  std::vector<SpanEvent> snapshot() const;

  std::uint64_t spans_recorded() const;  ///< published and not cleared
  std::uint64_t spans_dropped() const;   ///< lost to the per-thread capacity

  /// Discard every currently-published span.  Default mode: a watermark move
  /// only — buffers are retained and per-thread capacity is NOT replenished.
  /// With trace_ring_reuse() enabled, additionally schedules a rewind: each
  /// emitting thread restarts at its first chunk on its next span, reusing
  /// the already-allocated chunks, so capacity is replenished without
  /// unbounded memory growth.
  void clear();

  /// Per-thread span capacity; beyond it spans are dropped, not reallocated.
  static constexpr std::uint64_t kMaxSpansPerThread = std::uint64_t{1} << 18;

 private:
  Tracer();
  struct ThreadBuffer;
  struct Impl;
  ThreadBuffer& local_buffer();

  Impl* impl_;
};

/// RAII scoped span: captures the start time at construction (when tracing is
/// enabled) and emits the completed span at destruction.  Constructing with
/// tracing disabled costs one relaxed atomic load.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "pglb",
                     std::uint64_t arg = kTraceNoArg,
                     const char* sarg = nullptr) noexcept {
    if (tracing_enabled()) {
      name_ = name;
      category_ = category;
      arg_ = arg;
      sarg_ = sarg;
      start_ns_ = Tracer::instance().now_ns();
    }
  }

  /// Attach a string payload after construction (e.g. once the routed
  /// backend is known).  No-op when tracing was disabled at entry.
  void set_sarg(const char* sarg) noexcept {
    if (name_ != nullptr) sarg_ = sarg;
  }

  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer& tracer = Tracer::instance();
      SpanRecord record;
      record.name = name_;
      record.category = category_;
      record.start_ns = start_ns_;
      record.end_ns = tracer.now_ns();
      record.arg = arg_;
      record.sarg = sarg_;
      tracer.emit(record);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t arg_ = kTraceNoArg;
  const char* sarg_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

// Scoped-span macros: compile out entirely under -DPGLB_DISABLE_TRACING.
#if defined(PGLB_DISABLE_TRACING)
#define PGLB_TRACE_SPAN(name, category) ((void)0)
#define PGLB_TRACE_SPAN_ARG(name, category, arg) ((void)0)
#define PGLB_TRACE_SPAN_SARG(name, category, sarg) ((void)0)
#else
#define PGLB_OBS_CONCAT2(a, b) a##b
#define PGLB_OBS_CONCAT(a, b) PGLB_OBS_CONCAT2(a, b)
#define PGLB_TRACE_SPAN(name, category) \
  const ::pglb::TraceSpan PGLB_OBS_CONCAT(pglb_trace_span_, __LINE__)(name, category)
#define PGLB_TRACE_SPAN_ARG(name, category, arg) \
  const ::pglb::TraceSpan PGLB_OBS_CONCAT(pglb_trace_span_, __LINE__)(name, category, arg)
// String-payload span: `sarg` must have static storage (string literal or
// intern_trace_label).  The expression is evaluated unconditionally — intern
// once at setup time and pass the pointer, not per span.
#define PGLB_TRACE_SPAN_SARG(name, category, sarg)                  \
  const ::pglb::TraceSpan PGLB_OBS_CONCAT(pglb_trace_span_, __LINE__)( \
      name, category, ::pglb::kTraceNoArg, sarg)
#endif

}  // namespace pglb
