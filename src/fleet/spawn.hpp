#pragma once
// fork/exec helpers for standing up `pglb_serve --listen` replica processes,
// shared by pglb_router and pglb_loadgen (which used to carry private
// copies).  Replicas default to EPHEMERAL ports: the child binds port 0 and
// publishes the kernel's choice through a port file (util/portfile.hpp), so
// parallel CI runs never collide on a fixed range.  A fixed port still works
// for anything that needs one.

#include <cstddef>
#include <cstdint>
#include <string>

#include <sys/types.h>

namespace pglb {

struct SpawnOptions {
  std::string serve_path = "./pglb_serve";
  int threads = 4;
  double scale = 1.0 / 256.0;
  std::size_t queue = 256;
  bool shed = false;
  /// Child's --wire value ("" = child default).  "line" stands up a
  /// line-JSON-only replica that declines the binary upgrade (docs/WIRE.md).
  std::string wire;
  /// Directory where ephemeral children publish <tag>.port; required when
  /// spawning with port 0.
  std::string port_dir;
  /// Durable warm state (docs/PERSIST.md): when non-empty, each child gets
  /// `--snapshot-dir=<snapshot_dir>/<tag>` (created on demand), so a
  /// respawned slot restores the snapshot its predecessor left behind.
  std::string snapshot_dir;
  /// Child's --snapshot-interval-ms (0 = save only on the SIGTERM drain).
  std::uint64_t snapshot_interval_ms = 0;
};

struct ServeChild {
  pid_t pid = -1;
  std::uint16_t port = 0;  ///< 0 until an ephemeral child is waited on
};

/// Fork+exec one pglb_serve listening on `port` (0 = ephemeral).  `tag`
/// names the port file; a respawn of the same slot reuses the tag (any stale
/// file is removed before the fork, so the wait below can't read it).
ServeChild spawn_serve(const SpawnOptions& options, std::uint16_t port,
                       const std::string& tag);

/// Resolve the child's live port — reads <port_dir>/<tag>.port for ephemeral
/// children — then poll-connect until it accepts.  Updates `child.port` and
/// returns it.  Throws after `timeout_ms`.
std::uint16_t wait_serve_ready(ServeChild& child, const SpawnOptions& options,
                               const std::string& tag,
                               std::uint64_t timeout_ms);

/// Poll-connect 127.0.0.1:`port` until the listener accepts (it may still be
/// generating its proxy suite).  Throws after `timeout_ms`.
void wait_listening(std::uint16_t port, std::uint64_t timeout_ms);

}  // namespace pglb
