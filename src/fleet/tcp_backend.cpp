#include "fleet/tcp_backend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pglb {

TcpBackend::TcpBackend(std::string name, std::uint16_t port, std::string host)
    : name_(std::move(name)), host_(std::move(host)), port_(port) {}

TcpBackend::~TcpBackend() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Wake the reader; it owns closing the descriptor on its way out.
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    fail_pending_locked("backend shut down");
  }
  if (reader_.joinable()) reader_.join();
}

bool TcpBackend::connect_locked(std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *error = "bad host '" + host_ + "'";
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    *error = std::string("connect: ") + std::strerror(saved);
    return false;
  }
  // Lines are small and latency-sensitive; never wait on Nagle.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  reader_ = std::thread([this, fd] { reader_loop(fd); });
  return true;
}

void TcpBackend::fail_pending_locked(const std::string& what) {
  for (std::promise<std::string>& promise : pending_) {
    promise.set_exception(std::make_exception_ptr(BackendError(name_, what)));
  }
  pending_.clear();
}

void TcpBackend::reader_loop(int fd) {
  std::string buffer;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF or error: the stream ordering is gone
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl; (nl = buffer.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      std::string line = buffer.substr(start, nl - start);
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.empty()) continue;  // unsolicited line; drop
      pending_.front().set_value(std::move(line));
      pending_.pop_front();
    }
    buffer.erase(0, start);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  fail_pending_locked("connection lost");
  if (fd_ == fd) fd_ = -1;
  ::close(fd);
}

std::future<std::string> TcpBackend::submit(std::string line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  if (fd_ < 0) {
    // Reap the previous connection's reader before starting a new one.  Done
    // outside the lock: the exiting reader takes the mutex for its cleanup.
    std::thread old;
    old.swap(reader_);
    lock.unlock();
    if (old.joinable()) old.join();
    lock.lock();
    std::string error;
    if (fd_ < 0 && !connect_locked(&error)) {
      promise.set_exception(std::make_exception_ptr(BackendError(name_, error)));
      return future;
    }
  }

  line.push_back('\n');
  // Queue the promise BEFORE writing: the response can race back on the
  // reader thread the instant the last byte lands.
  pending_.push_back(std::move(promise));
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string what = std::string("send: ") + std::strerror(errno);
      fail_pending_locked(what);  // includes the promise just queued
      ::shutdown(fd_, SHUT_RDWR);  // reader notices and closes the fd
      break;
    }
    sent += static_cast<std::size_t>(n);
  }
  return future;
}

}  // namespace pglb
