#include "fleet/tcp_backend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/registry.hpp"
#include "service/wire.hpp"
#include "util/rng.hpp"

namespace pglb {

namespace {

/// One breather between retries of a transiently failing syscall — long
/// enough for the kernel to drain a buffer, short enough to be invisible.
void transient_pause() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

std::uint64_t now_steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Deterministic per-backend jitter seed: the name hashed through splitmix64.
std::uint64_t jitter_seed(const std::string& name) {
  std::uint64_t seed = 0xC3A5C85C97CB3127ull;
  for (const char c : name) {
    seed = splitmix64(seed ^ static_cast<unsigned char>(c));
  }
  return seed;
}

constexpr std::size_t kMaxIov = 64;

/// Write every byte of every string in `batch` through gathered sendmsg()
/// calls — the whole accumulated queue usually goes out in ONE syscall.
/// EINTR retries immediately, transient pressure retries after a pause, a
/// fatal errno returns false with `error` describing it.
bool send_gathered(int fd, const std::vector<std::string>& batch,
                   std::string* error) {
  std::size_t index = 0;  // first message not yet fully written
  std::size_t skip = 0;   // bytes of batch[index] already written
  while (index < batch.size()) {
    iovec iov[kMaxIov];
    std::size_t iovcnt = 0;
    for (std::size_t i = index; i < batch.size() && iovcnt < kMaxIov; ++i) {
      const std::string& message = batch[i];
      const std::size_t offset = (i == index) ? skip : 0;
      iov[iovcnt].iov_base = const_cast<char*>(message.data()) + offset;
      iov[iovcnt].iov_len = message.size() - offset;
      ++iovcnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovcnt;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      switch (wire::classify_io_errno(errno)) {
        case wire::IoClass::kRetry:
          continue;
        case wire::IoClass::kTransient:
          transient_pause();
          continue;
        case wire::IoClass::kFatal:
          *error = std::string("send: ") + std::strerror(errno);
          return false;
      }
    }
    // Advance past whatever the kernel took (partial writes land mid-string).
    std::size_t advanced = static_cast<std::size_t>(n);
    while (index < batch.size()) {
      const std::size_t remaining = batch[index].size() - skip;
      if (advanced < remaining) {
        skip += advanced;
        break;
      }
      advanced -= remaining;
      skip = 0;
      ++index;
    }
  }
  return true;
}

}  // namespace

TcpBackend::TcpBackend(std::string name, std::uint16_t port, std::string host,
                       WireMode mode, Registry* metrics)
    : name_(std::move(name)),
      host_(std::move(host)),
      port_(port),
      mode_(mode),
      metrics_(metrics),
      backoff_rng_(jitter_seed(name_)) {}

TcpBackend::TcpBackend(std::string name, int connected_fd, WireMode mode,
                       Registry* metrics)
    : name_(std::move(name)),
      host_("adopted"),
      port_(0),
      mode_(mode),
      metrics_(metrics),
      adopted_(true),
      adopted_fd_(connected_fd),
      backoff_rng_(jitter_seed(name_)) {}

Registry& TcpBackend::metrics_registry() const {
  return metrics_ != nullptr ? *metrics_ : global_registry();
}

TcpBackend::~TcpBackend() {
  std::unique_lock<std::mutex> lock(mutex_);
  teardown_locked("backend shut down");
  reap_locked(lock);
  if (adopted_fd_ >= 0) {
    ::close(adopted_fd_);  // adopted but never used
    adopted_fd_ = -1;
  }
}

bool TcpBackend::connect_locked(std::string* error) {
  if (dial_locked(error)) {
    // Success resets the backoff ladder; the next failure starts small again.
    connect_failure_streak_ = 0;
    next_dial_at_ms_ = 0;
    metrics_registry().set_gauge("wire.backoff_ms", 0.0);
    metrics_registry().count("wire.reconnects");
    return true;
  }
  ++stats_.connect_failures;
  metrics_registry().count("wire.connect_failures");
  ++connect_failure_streak_;
  const std::uint64_t shift =
      std::min<std::uint64_t>(connect_failure_streak_ - 1, 20);
  const std::uint64_t window = std::min<std::uint64_t>(
      reconnect_policy_.max_ms, reconnect_policy_.base_ms << shift);
  // Uniform in [window/2, window]: enough spread that backends dialing the
  // same recovered replica never thunder in phase, deterministic per name.
  backoff_rng_ = splitmix64(backoff_rng_);
  const std::uint64_t wait =
      window == 0 ? 0 : window / 2 + backoff_rng_ % (window / 2 + 1);
  next_dial_at_ms_ = now_steady_ms() + wait;
  metrics_registry().set_gauge("wire.backoff_ms", static_cast<double>(wait));
  return false;
}

bool TcpBackend::dial_locked(std::string* error) {
  int fd = -1;
  if (adopted_) {
    if (adopted_fd_ < 0) {
      *error = "adopted connection lost";
      return false;
    }
    fd = adopted_fd_;
    adopted_fd_ = -1;
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      *error = "bad host '" + host_ + "'";
      return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const int saved = errno;
      ::close(fd);
      *error = std::string("connect: ") + std::strerror(saved);
      return false;
    }
    // Messages are small and latency-sensitive; never wait on Nagle.  (The
    // writer's own batching already coalesces what can be coalesced.)
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  std::string preamble;
  if (!negotiate(fd, &preamble, error)) {
    ::close(fd);
    return false;
  }

  fd_ = fd;
  ++stats_.reconnects;
  const std::uint64_t epoch = epoch_;
  const bool binary = binary_;
  reader_ = std::thread([this, fd, epoch, binary,
                         carried = std::move(preamble)]() mutable {
    reader_loop(fd, epoch, binary, std::move(carried));
  });
  writer_ = std::thread([this, fd, epoch] { writer_loop(fd, epoch); });
  return true;
}

bool TcpBackend::negotiate(int fd, std::string* preamble, std::string* error) {
  binary_ = false;
  crc_ = false;
  if (mode_ == WireMode::kLineJson) return true;

  // Always ask for CRC trailers alongside frames; a server that predates
  // them ignores the extra key and its plain ack declines cleanly.
  std::string hello = wire::hello_line(/*want_crc=*/true);
  hello.push_back('\n');
  std::size_t sent = 0;
  while (sent < hello.size()) {
    const ssize_t n =
        ::send(fd, hello.data() + sent, hello.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      switch (wire::classify_io_errno(errno)) {
        case wire::IoClass::kRetry:
          continue;
        case wire::IoClass::kTransient:
          transient_pause();
          continue;
        case wire::IoClass::kFatal:
          *error = std::string("handshake send: ") + std::strerror(errno);
          return false;
      }
    }
    sent += static_cast<std::size_t>(n);
  }

  // Read exactly one response line; bytes after the newline (a fast server's
  // first frames) are carried over to the reader thread, never dropped.
  std::string buffer;
  std::size_t nl;
  char chunk[512];
  while ((nl = buffer.find('\n')) == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0) {
      *error = "handshake: peer closed the connection";
      return false;
    }
    if (n < 0) {
      switch (wire::classify_io_errno(errno)) {
        case wire::IoClass::kRetry:
          continue;
        case wire::IoClass::kTransient:
          transient_pause();
          continue;
        case wire::IoClass::kFatal:
          *error = std::string("handshake read: ") + std::strerror(errno);
          return false;
      }
      continue;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > (1u << 20)) {
      *error = "handshake: oversized response";
      return false;
    }
  }
  const std::string line = buffer.substr(0, nl);
  *preamble = buffer.substr(nl + 1);

  if (wire::is_hello_ack(line)) {
    binary_ = true;
    crc_ = wire::ack_grants_crc(line);
    return true;
  }
  if (mode_ == WireMode::kBinary) {
    *error = "server declined binary framing";
    return false;
  }
  // An older server answered the hello with its usual typed parse error —
  // that rejection IS the fallback signal.  Drop it (it answers no queued
  // request) and stay on line-JSON.
  return true;
}

void TcpBackend::fail_pending_locked(const std::string& what) {
  for (std::promise<std::string>& promise : pending_fifo_) {
    promise.set_exception(std::make_exception_ptr(BackendError(name_, what)));
  }
  pending_fifo_.clear();
  for (auto& [id, promise] : pending_by_id_) {
    promise.set_exception(std::make_exception_ptr(BackendError(name_, what)));
  }
  pending_by_id_.clear();
}

void TcpBackend::teardown_locked(const std::string& what) {
  if (fd_ >= 0) {
    // Wake both IO threads out of their blocking syscalls.  Neither thread
    // closes the descriptor — reap_locked does, after both have joined, so a
    // thread can never race a close() and read from a recycled fd number.
    ::shutdown(fd_, SHUT_RDWR);
    dead_fd_ = fd_;
    fd_ = -1;
  }
  ++epoch_;  // stale reader/writer loops notice and exit
  binary_ = false;
  crc_ = false;
  sendq_.clear();
  fail_pending_locked(what);
  sendq_cv_.notify_all();
}

void TcpBackend::reap_locked(std::unique_lock<std::mutex>& lock) {
  // Swap the threads out under the lock, join outside it: the exiting
  // threads take the mutex for their own cleanup.
  std::thread reader;
  std::thread writer;
  reader.swap(reader_);
  writer.swap(writer_);
  const int dead = dead_fd_;
  dead_fd_ = -1;
  lock.unlock();
  if (reader.joinable()) reader.join();
  if (writer.joinable()) writer.join();
  if (dead >= 0) ::close(dead);
  lock.lock();
}

void TcpBackend::reader_loop(int fd, std::uint64_t epoch, bool binary,
                             std::string preamble) {
  std::string buffer = std::move(preamble);
  std::size_t start = 0;
  char chunk[1 << 16];
  std::string failure = "connection lost";
  bool desynced = false;
  for (;;) {
    // Drain everything already buffered (including the handshake carryover
    // on the first pass) before blocking for more bytes.
    if (binary) {
      wire::Frame frame;
      std::string error;
      for (;;) {
        const wire::DecodeStatus status =
            wire::decode_frame(buffer, &start, &frame, &error);
        if (status == wire::DecodeStatus::kNeedMore) break;
        if (status == wire::DecodeStatus::kBad) {
          failure = "frame error: " + error;
          desynced = true;
          break;
        }
        if (status == wire::DecodeStatus::kCorrupt) {
          // Damaged payload behind an intact length prefix: fail exactly
          // this request (the router turns it into failover) and keep the
          // connection — the stream never desynchronized.
          metrics_registry().count("wire.crc_rejected");
          std::lock_guard<std::mutex> lock(mutex_);
          if (epoch_ != epoch) return;
          const auto it = pending_by_id_.find(frame.id);
          if (it == pending_by_id_.end()) continue;
          it->second.set_exception(std::make_exception_ptr(
              BackendError(name_, "response frame failed crc check")));
          pending_by_id_.erase(it);
          continue;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (epoch_ != epoch) return;  // torn down; a newer connection owns state
        const auto it = pending_by_id_.find(frame.id);
        if (it == pending_by_id_.end()) continue;  // unsolicited id; drop
        it->second.set_value(std::move(frame.payload));
        pending_by_id_.erase(it);
      }
      if (desynced) break;
    } else {
      for (std::size_t nl; (nl = buffer.find('\n', start)) != std::string::npos;
           start = nl + 1) {
        std::string line = buffer.substr(start, nl - start);
        std::lock_guard<std::mutex> lock(mutex_);
        if (epoch_ != epoch) return;
        if (pending_fifo_.empty()) continue;  // unsolicited line; drop
        pending_fifo_.front().set_value(std::move(line));
        pending_fifo_.pop_front();
      }
    }
    buffer.erase(0, start);
    start = 0;

    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0) break;  // EOF: peer closed
    if (n < 0) {
      const wire::IoClass io = wire::classify_io_errno(errno);
      if (io == wire::IoClass::kRetry) continue;  // EINTR is not a dead peer
      if (io == wire::IoClass::kTransient) {
        transient_pause();
        continue;
      }
      failure = std::string("read: ") + std::strerror(errno);
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (epoch_ == epoch) teardown_locked(failure);
}

void TcpBackend::writer_loop(int fd, std::uint64_t epoch) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    sendq_cv_.wait(lock, [&] { return epoch_ != epoch || !sendq_.empty(); });
    if (epoch_ != epoch) return;
    std::vector<std::string> batch;
    batch.swap(sendq_);
    lock.unlock();
    std::string error;
    const bool ok = send_gathered(fd, batch, &error);
    lock.lock();
    if (epoch_ != epoch) return;  // torn down underneath the write
    if (!ok) {
      teardown_locked(error);
      return;
    }
    ++stats_.batches;
    stats_.messages += batch.size();
  }
}

std::future<std::string> TcpBackend::submit(std::string line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  if (fd_ < 0) {
    // Reap the previous connection (join threads, close the fd) before
    // dialing a new one.
    reap_locked(lock);
    if (fd_ < 0) {  // nobody else reconnected while reap dropped the lock
      // Inside a backoff window, fail fast instead of re-dialing: this is
      // what keeps a dead (or just-recovering) replica from being hammered
      // by every submit.  The router reads the BackendError as "down".
      const std::uint64_t now = now_steady_ms();
      if (!adopted_ && next_dial_at_ms_ > now) {
        ++stats_.backoff_skips;
        promise.set_exception(std::make_exception_ptr(BackendError(
            name_, "reconnect backoff: next dial in " +
                       std::to_string(next_dial_at_ms_ - now) + " ms")));
        return future;
      }
      std::string error;
      if (!connect_locked(&error)) {
        promise.set_exception(
            std::make_exception_ptr(BackendError(name_, error)));
        return future;
      }
    }
  }

  ++stats_.requests;
  if (binary_) {
    const std::uint64_t id = next_id_++;
    std::string frame;
    wire::append_frame(frame, wire::FrameType::kRequest, id, line, crc_);
    pending_by_id_.emplace(id, std::move(promise));
    sendq_.push_back(std::move(frame));
  } else {
    // Queue the promise BEFORE the bytes can hit the wire: the response can
    // race back on the reader thread the instant the last byte lands.
    line.push_back('\n');
    pending_fifo_.push_back(std::move(promise));
    sendq_.push_back(std::move(line));
  }
  sendq_cv_.notify_one();
  return future;
}

void TcpBackend::set_port(std::uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  port_ = port;
  // A respawned replica is a fresh endpoint: forget the old one's backoff so
  // the first submit dials immediately.
  connect_failure_streak_ = 0;
  next_dial_at_ms_ = 0;
  if (fd_ >= 0) {
    teardown_locked("endpoint moved to port " + std::to_string(port));
  }
}

void TcpBackend::set_reconnect_policy(ReconnectPolicy policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  reconnect_policy_ = policy;
  connect_failure_streak_ = 0;
  next_dial_at_ms_ = 0;
}

std::uint16_t TcpBackend::port() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return port_;
}

TcpBackend::Stats TcpBackend::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats snapshot = stats_;
  snapshot.binary = fd_ >= 0 && binary_;
  snapshot.crc = fd_ >= 0 && crc_;
  return snapshot;
}

}  // namespace pglb
