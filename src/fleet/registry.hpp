#pragma once
// Backend bookkeeping of the fleet router (docs/FLEET.md): which replicas
// exist, their rendezvous weights, and their health.
//
// Health model: a backend is up, down, or draining.
//  - up:       eligible for routing.
//  - down:     a transport failure (or failed probe) was observed; ineligible
//              until its backoff window passes, at which point ONE caller may
//              probe through (exponential backoff on consecutive failures, so
//              a dead replica costs O(log) reconnect attempts, not one per
//              request).
//  - draining: administratively excluded from NEW requests (planned restart,
//              scale-in) while in-flight work finishes.  Health probes keep
//              running so an operator can see it is still alive.
//
// Typed backpressure integrates here too: when a backend answers
// "overloaded" with retry_after_ms, defer() parks it (still up, but
// ineligible) until that horizon passes — the router retries elsewhere
// immediately and honours the backend's own hint instead of hammering it.
//
// Time is injectable (options.clock_ms) so tests drive backoff and
// retry-after windows on a virtual clock, the same idiom as
// BreakerOptions::clock_ms (docs/ROBUSTNESS.md).

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fleet/backend.hpp"

namespace pglb {

enum class BackendState { kUp, kDown, kDraining };

std::string_view to_string(BackendState state) noexcept;

struct FleetOptions {
  /// First backoff window after a failure; doubles per consecutive failure.
  std::uint64_t base_backoff_ms = 100;
  /// Backoff ceiling.
  std::uint64_t max_backoff_ms = 5'000;
  /// Injectable monotonic clock (milliseconds).  Defaults to steady_clock.
  std::function<std::uint64_t()> clock_ms;
};

/// Point-in-time health of one backend, as reported by status_json().
struct BackendStatus {
  std::string name;
  double weight = 1.0;
  BackendState state = BackendState::kUp;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t not_before_ms = 0;  ///< next eligible attempt (0 = now)
  std::uint64_t successes = 0;      ///< requests + probes answered
  std::uint64_t failures = 0;       ///< transport failures observed
};

class FleetRegistry {
 public:
  explicit FleetRegistry(FleetOptions options = {});

  /// Register a backend with a rendezvous weight.  Returns its index.  All
  /// backends must be added before routing starts (indices are stable).
  std::size_t add(std::shared_ptr<Backend> backend, double weight = 1.0);

  std::size_t size() const noexcept { return backends_.size(); }
  Backend& backend(std::size_t index) const { return *backends_[index]; }
  const std::vector<std::string>& names() const noexcept { return names_; }
  const std::vector<double>& weights() const noexcept { return weights_; }

  /// True when `index` may receive a NEW request now: up (or down with its
  /// backoff window expired — the probe-through path) and not draining and
  /// not parked by a retry-after hint.
  bool eligible(std::size_t index) const;

  /// True when `index` should be health-probed now: anything not up whose
  /// window expired, plus every up backend (liveness confirmation).
  bool probe_due(std::size_t index) const;

  /// A request or probe succeeded: transition to up, reset failure count.
  /// Draining is sticky — success keeps a draining backend draining.
  void record_success(std::size_t index);

  /// A transport failure: transition to down and push not_before out by the
  /// exponential backoff for the (incremented) consecutive-failure count.
  void record_failure(std::size_t index);

  /// The backend shed with "overloaded": park it (no state change) until
  /// now + retry_after_ms.
  void defer(std::size_t index, std::uint64_t retry_after_ms);

  void set_draining(std::size_t index, bool draining);

  BackendStatus status(std::size_t index) const;

  /// One-line JSON array of per-backend status, deterministic key order:
  ///   [{"name":...,"state":...,"weight":...,"failures":...,...},...]
  std::string status_json() const;

  std::uint64_t now_ms() const { return options_.clock_ms(); }

 private:
  struct Health {
    BackendState state = BackendState::kUp;
    bool draining = false;
    std::uint64_t consecutive_failures = 0;
    std::uint64_t not_before_ms = 0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
  };

  std::uint64_t backoff_ms(std::uint64_t consecutive_failures) const;

  FleetOptions options_;
  std::vector<std::shared_ptr<Backend>> backends_;
  std::vector<std::string> names_;
  std::vector<double> weights_;
  mutable std::mutex mutex_;
  std::vector<Health> health_;
};

}  // namespace pglb
