#pragma once
// Backend bookkeeping of the fleet router (docs/FLEET.md): which replicas
// exist, their rendezvous weights, and their health.
//
// Health model: a backend is up, down, or draining.
//  - up:       eligible for routing.
//  - down:     a transport failure (or failed probe) was observed; ineligible
//              until its backoff window passes, at which point ONE caller may
//              probe through (exponential backoff on consecutive failures, so
//              a dead replica costs O(log) reconnect attempts, not one per
//              request).
//  - draining: administratively excluded from NEW requests (planned restart,
//              scale-in) while in-flight work finishes.  Health probes keep
//              running so an operator can see it is still alive.
//
// Typed backpressure integrates here too: when a backend answers
// "overloaded" with retry_after_ms, defer() parks it (still up, but
// ineligible) until that horizon passes — the router retries elsewhere
// immediately and honours the backend's own hint instead of hammering it.
//
// Membership is dynamic: the autoscaler (docs/AUTOSCALE.md) adds replicas
// while requests are routing, so every read that spans the backend list goes
// through a snapshot (membership()) or a locked accessor — indices are
// stable (slots are only appended, never removed; scale-in drains a slot and
// leaves it for a later rejoin).
//
// Time is injectable (options.clock_ms) so tests drive backoff and
// retry-after windows on a virtual clock, the same idiom as
// BreakerOptions::clock_ms (docs/ROBUSTNESS.md).

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fleet/backend.hpp"

namespace pglb {

enum class BackendState { kUp, kDown, kDraining };

std::string_view to_string(BackendState state) noexcept;

struct FleetOptions {
  /// First backoff window after a failure; doubles per consecutive failure.
  std::uint64_t base_backoff_ms = 100;
  /// Backoff ceiling.
  std::uint64_t max_backoff_ms = 5'000;
  /// Injectable monotonic clock (milliseconds).  Defaults to steady_clock.
  std::function<std::uint64_t()> clock_ms;

  // --- straggler detection (docs/CHAOS.md) ---------------------------------
  // A chronically slow backend on a degraded link answers every request and
  // so never goes down — but routing to it at full weight drags tail latency.
  // record_latency() keeps a per-backend EWMA; a backend whose EWMA exceeds
  // straggler_factor × the median of its peers' EWMAs is marked *degraded*:
  // still up, still probed, but its rendezvous weight is multiplied by
  // straggler_weight_factor so it wins proportionally fewer keys.  Recovery
  // (EWMA back under straggler_recovery_factor × median) restores the weight
  // — the gap between the two factors is the hysteresis that stops flapping.

  /// Degrade threshold: EWMA > factor × peer median.
  double straggler_factor = 4.0;
  /// Recover threshold: EWMA < factor × peer median.  Must be < straggler_factor.
  double straggler_recovery_factor = 2.0;
  /// Samples a backend (and each peer consulted) needs before judgments.
  std::uint64_t straggler_min_samples = 8;
  /// Rendezvous weight multiplier while degraded.
  double straggler_weight_factor = 0.25;
  /// EWMA smoothing: new = old + alpha × (sample − old).
  double latency_ewma_alpha = 0.2;
};

/// Point-in-time health of one backend, as reported by status_json().
struct BackendStatus {
  std::string name;
  double weight = 1.0;
  BackendState state = BackendState::kUp;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t not_before_ms = 0;  ///< next eligible attempt (0 = now)
  std::uint64_t successes = 0;      ///< requests + probes answered
  std::uint64_t failures = 0;       ///< transport failures observed
  std::uint64_t inflight = 0;       ///< router attempts launched, not harvested
  std::uint64_t queue_depth = 0;    ///< last depth a shed response reported
  bool degraded = false;            ///< straggler: weight-decayed, still up
  double ewma_ms = 0.0;             ///< smoothed end-to-end latency
  std::uint64_t latency_samples = 0;
};

/// Point-in-time copy of the backend list for one routing decision — ranking
/// must see one consistent (names, weights) pair even while the autoscaler
/// appends replicas concurrently.
struct FleetMembership {
  std::vector<std::string> names;
  std::vector<double> weights;
};

class FleetRegistry {
 public:
  explicit FleetRegistry(FleetOptions options = {});

  /// Register a backend with a rendezvous weight.  Returns its index.
  /// Thread-safe: the autoscaler adds replicas while requests route; indices
  /// already handed out stay valid (append-only).
  std::size_t add(std::shared_ptr<Backend> backend, double weight = 1.0);

  std::size_t size() const;
  std::shared_ptr<Backend> backend(std::size_t index) const;
  FleetMembership membership() const;
  std::string name(std::size_t index) const;

  /// True when `index` may receive a NEW request now: up (or down with its
  /// backoff window expired — the probe-through path) and not draining and
  /// not parked by a retry-after hint.
  bool eligible(std::size_t index) const;

  /// True when `index` should be health-probed now: anything not up whose
  /// window expired, plus every up backend (liveness confirmation).
  bool probe_due(std::size_t index) const;

  /// A request or probe succeeded: transition to up, reset failure count.
  /// Draining is sticky — success keeps a draining backend draining.
  void record_success(std::size_t index);

  /// A transport failure: transition to down and push not_before out by the
  /// exponential backoff for the (incremented) consecutive-failure count.
  void record_failure(std::size_t index);

  /// One observed end-to-end latency for a harvested response from `index`.
  /// Feeds the straggler EWMA (see FleetOptions); returns true exactly when
  /// this sample flipped the backend to degraded (the router counts those).
  bool record_latency(std::size_t index, double elapsed_ms);

  /// The backend shed with "overloaded": park it (no state change) until
  /// now + retry_after_ms, and remember the queue depth it reported (the
  /// autoscaler's shed-pressure signal; cleared by the next success).
  void defer(std::size_t index, std::uint64_t retry_after_ms,
             std::uint64_t queue_depth = 0);

  void set_draining(std::size_t index, bool draining);

  /// Router attempt accounting: one launched (+1) / harvested or abandoned
  /// (-1) attempt on `index`.  Returns the new in-flight count — the
  /// queue-depth proxy the autoscaler samples and the router mirrors into
  /// the obs registry as the fleet.<name>.inflight gauge.
  std::uint64_t begin_attempt(std::size_t index);
  std::uint64_t end_attempt(std::size_t index);

  BackendStatus status(std::size_t index) const;

  /// One-line JSON array of per-backend status, deterministic key order:
  ///   [{"name":...,"state":...,"weight":...,"failures":...,...},...]
  std::string status_json() const;

  std::uint64_t now_ms() const { return options_.clock_ms(); }

 private:
  struct Health {
    BackendState state = BackendState::kUp;
    bool draining = false;
    std::uint64_t consecutive_failures = 0;
    std::uint64_t not_before_ms = 0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    std::uint64_t inflight = 0;
    std::uint64_t queue_depth = 0;
    bool degraded = false;
    double ewma_ms = 0.0;
    std::uint64_t latency_samples = 0;
  };

  std::uint64_t backoff_ms(std::uint64_t consecutive_failures) const;

  FleetOptions options_;
  std::vector<std::shared_ptr<Backend>> backends_;
  std::vector<std::string> names_;
  std::vector<double> weights_;
  mutable std::mutex mutex_;
  std::vector<Health> health_;
};

}  // namespace pglb
