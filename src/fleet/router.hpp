#pragma once
// The fleet router (docs/FLEET.md): fronts N planning backends with
// cache-affine placement, health checking, hedged retries, and typed-aware
// failover.
//
//  - Placement: rendezvous-ranks the fleet on the request's routing key
//    (fleet/hashing.hpp) so requests sharing a profile-cache entry land on
//    the same replica — the profile cache stays hot instead of being diluted
//    K ways.
//  - Failover: a transport failure (BackendError) marks the backend down
//    (exponential backoff, fleet/registry.hpp) and retries the next-ranked
//    replica.  A typed "overloaded" response parks the backend for its own
//    retry_after_ms hint and fails over likewise.  Typed "error"/"timeout"
//    responses are the backend's answer, not a transport problem — they are
//    returned to the client untouched.
//  - Hedging: if the first replica has not answered within hedge_delay_ms,
//    ONE duplicate is sent to the next-ranked replica and the first response
//    wins.  Plans are deterministic, so both replicas would produce the same
//    bytes — hedging changes tail latency, never the answer.
//  - Deadline: the request's own timeout_ms (or the router default) bounds
//    the whole attempt chain; on expiry the router synthesizes a typed
//    "timeout" response, so clients always get one line per request.
//
// route() is thread-safe and blocking (one caller thread per in-flight
// request, the same model as PlanServer::serve_stream's workers).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "fleet/registry.hpp"
#include "obs/registry.hpp"

namespace pglb {

struct RouterOptions {
  /// Deadline for requests that do not carry timeout_ms.  0 = unbounded.
  std::uint64_t default_deadline_ms = 30'000;
  /// Send one duplicate to the next-ranked replica after this long without a
  /// response.  0 disables hedging.
  std::uint64_t hedge_delay_ms = 0;
  /// Distinct backends contacted per request (failovers and the hedge each
  /// consume a slot).  0 = every backend.
  std::size_t max_attempts = 0;
  /// Background health-probe cadence.  0 disables the prober thread.
  std::uint64_t probe_interval_ms = 500;
  /// How long a probe may wait for its metrics response.
  std::uint64_t probe_timeout_ms = 2'000;
  /// Health/backoff tuning, including the injectable clock.
  FleetOptions fleet;
};

class Router {
 public:
  /// Counters and latency stages are recorded into `metrics` (may be null).
  explicit Router(RouterOptions options = {}, Registry* metrics = nullptr);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Register a backend (before routing starts).  Returns its index.
  std::size_t add_backend(std::shared_ptr<Backend> backend, double weight = 1.0);

  /// Route one raw request line; always returns exactly one response line.
  /// Unparseable lines are still forwarded (keyed on their raw bytes) so the
  /// backend's own typed error response reaches the client byte-identical to
  /// the single-backend path.
  std::string route(const std::string& line);

  /// Start the background prober (no-op when probe_interval_ms == 0).
  void start();

  /// Stop the prober and stop accepting work (idempotent; destructor calls it).
  void stop();

  /// Probe every due backend once, synchronously.  Returns the number of
  /// healthy responses.  The prober thread calls this on its cadence; tests
  /// call it directly for deterministic health transitions.
  std::size_t probe_once();

  FleetRegistry& fleet() noexcept { return fleet_; }

  /// {"backends":[...status_json...],"hedge_delay_ms":...} — the fleet block
  /// pglb_router splices into its metrics responses.
  std::string fleet_json() const;

 private:
  void count(std::string_view name, std::uint64_t delta = 1);
  /// Mirror per-backend attempt accounting into first-class obs gauges
  /// (fleet.<name>.inflight / fleet.<name>.queue_depth) so the autoscaler and
  /// `metrics` requests read them uniformly alongside the fleet health block.
  void set_inflight_gauge(const std::string& backend, std::uint64_t value);
  void set_queue_depth_gauge(const std::string& backend, std::uint64_t value);
  void prober_loop();

  RouterOptions options_;
  Registry* metrics_;
  FleetRegistry fleet_;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread prober_;
};

}  // namespace pglb
