#include "fleet/router.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "fleet/hashing.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"

namespace pglb {

namespace {

using Clock = std::chrono::steady_clock;

/// The serializer emits a fixed key order, so a substring probe is an exact
/// status test — no parse needed on the hot path.
bool is_overloaded_response(const std::string& response) {
  return response.find("\"status\":\"overloaded\"") != std::string::npos;
}

std::uint64_t overloaded_retry_after_ms(const std::string& response) {
  try {
    return parse_plan_response(response).retry_after_ms;
  } catch (const std::exception&) {
    return 0;
  }
}

}  // namespace

Router::Router(RouterOptions options, Registry* metrics)
    : options_(options), metrics_(metrics), fleet_(options.fleet) {}

Router::~Router() { stop(); }

void Router::count(std::string_view name, std::uint64_t delta) {
  if (metrics_ != nullptr) metrics_->count(name, delta);
}

std::size_t Router::add_backend(std::shared_ptr<Backend> backend, double weight) {
  return fleet_.add(std::move(backend), weight);
}

std::string Router::route(const std::string& line) {
  TraceSpan span("router.route", "fleet");
  const ScopedTimer timer(metrics_, "router.route");
  count("router.requests");

  // Routing key + deadline.  Unparseable lines still route (keyed on their
  // raw bytes): the backend's typed error response is the contract, and it
  // must be byte-identical to what a direct client would have seen.
  std::string key;
  std::string request_id;
  std::uint64_t deadline_ms = options_.default_deadline_ms;
  try {
    const PlanRequest request = parse_plan_request(line);
    key = routing_key(request);
    request_id = request.id;
    if (request.timeout_ms) deadline_ms = *request.timeout_ms;
  } catch (const std::exception&) {
    key = line;
  }

  const auto order = rank_backends(key, fleet_.names(), fleet_.weights());
  const std::size_t max_attempts =
      options_.max_attempts == 0 ? order.size()
                                 : std::min(options_.max_attempts, order.size());

  const auto start = Clock::now();
  const auto deadline = deadline_ms == 0
                            ? Clock::time_point::max()
                            : start + std::chrono::milliseconds(deadline_ms);
  const bool may_hedge = options_.hedge_delay_ms > 0 && max_attempts > 1;
  const auto hedge_at =
      may_hedge ? start + std::chrono::milliseconds(options_.hedge_delay_ms)
                : Clock::time_point::max();

  struct InFlight {
    std::size_t index;
    bool is_hedge;
    std::future<std::string> future;
  };
  std::vector<InFlight> inflight;
  std::size_t cursor = 0;    // next rank to consider
  std::size_t attempts = 0;  // distinct backends contacted (hedge included)
  bool hedged = false;
  std::string last_overloaded;

  const auto launch = [&](bool is_hedge) -> bool {
    while (cursor < order.size() && attempts < max_attempts) {
      const std::size_t index = order[cursor++];
      if (!fleet_.eligible(index)) continue;
      ++attempts;
      count("fleet." + fleet_.names()[index] + ".routed");
      inflight.push_back(
          {index, is_hedge, fleet_.backend(index).submit(line)});
      return true;
    }
    return false;
  };

  if (!launch(false)) {
    // Every backend is down, draining, or parked: tell the client to retry
    // once the shortest backoff window could have passed.
    count("router.unroutable");
    return serialize_overloaded(request_id, 0, options_.fleet.base_backoff_ms);
  }

  for (;;) {
    // Harvest any finished attempt (ready futures first, FIFO among ready).
    bool progressed = false;
    for (std::size_t i = 0; i < inflight.size();) {
      if (inflight[i].future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        ++i;
        continue;
      }
      InFlight attempt = std::move(inflight[i]);
      inflight.erase(inflight.begin() + static_cast<std::ptrdiff_t>(i));
      progressed = true;
      try {
        std::string response = attempt.future.get();
        fleet_.record_success(attempt.index);
        if (is_overloaded_response(response)) {
          // Typed backpressure: honour the backend's own retry-after hint,
          // fail over to the next replica meanwhile.
          fleet_.defer(attempt.index, overloaded_retry_after_ms(response));
          count("router.overloaded");
          last_overloaded = std::move(response);
          continue;
        }
        if (attempt.is_hedge) count("router.hedge_wins");
        if (tracing_enabled()) {
          span.set_sarg(intern_trace_label(fleet_.names()[attempt.index]));
        }
        return response;
      } catch (const BackendError&) {
        fleet_.record_failure(attempt.index);
        count("router.backend_errors");
      }
    }

    if (inflight.empty()) {
      if (launch(false)) {
        count("router.failovers");
        continue;
      }
      // Attempt chain exhausted.  An overloaded answer beats a synthetic
      // error: it is typed, truthful, and carries a retry hint.
      if (!last_overloaded.empty()) return last_overloaded;
      count("router.exhausted");
      PlanResponse response;
      response.id = request_id;
      response.ok = false;
      response.status = PlanStatus::kError;
      response.error = "fleet: all backends failed";
      return serialize_response(response);
    }
    if (progressed) continue;

    const auto now = Clock::now();
    if (now >= deadline) {
      // One line per request, always: expire the chain with a typed timeout
      // exactly as a single overwhelmed backend would.
      count("router.deadline_expired");
      PlanResponse response;
      response.id = request_id;
      response.ok = false;
      response.status = PlanStatus::kTimeout;
      response.error = "router: deadline of " + std::to_string(deadline_ms) +
                       " ms exceeded";
      return serialize_response(response);
    }
    if (!hedged && now >= hedge_at) {
      hedged = true;  // at most one duplicate per request
      if (launch(true)) count("router.hedges");
    }

    auto wake = std::min(deadline, now + std::chrono::milliseconds(1));
    if (!hedged) wake = std::min(wake, hedge_at);
    inflight.front().future.wait_until(wake);
  }
}

std::size_t Router::probe_once() {
  std::size_t healthy = 0;
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    if (!fleet_.probe_due(i)) continue;
    count("router.probes");
    auto future =
        fleet_.backend(i).submit(R"({"type":"metrics","id":"fleet-probe"})");
    if (future.wait_for(std::chrono::milliseconds(options_.probe_timeout_ms)) !=
        std::future_status::ready) {
      // The response, if it ever comes, is consumed by the channel's FIFO
      // matching; the probe itself counts as a failure.
      fleet_.record_failure(i);
      count("router.probe_failures");
      continue;
    }
    try {
      future.get();
      fleet_.record_success(i);
      ++healthy;
    } catch (const BackendError&) {
      fleet_.record_failure(i);
      count("router.probe_failures");
    }
  }
  return healthy;
}

void Router::start() {
  if (options_.probe_interval_ms == 0 || prober_.joinable()) return;
  stopping_ = false;
  prober_ = std::thread([this] { prober_loop(); });
}

void Router::prober_loop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stopping_) {
    lock.unlock();
    probe_once();
    lock.lock();
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.probe_interval_ms),
                      [&] { return stopping_; });
  }
}

void Router::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

std::string Router::fleet_json() const {
  std::string out = "{\"backends\":";
  out += fleet_.status_json();
  out += ",\"hedge_delay_ms\":" + std::to_string(options_.hedge_delay_ms);
  out += ",\"probe_interval_ms\":" + std::to_string(options_.probe_interval_ms);
  out.push_back('}');
  return out;
}

}  // namespace pglb
