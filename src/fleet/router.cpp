#include "fleet/router.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "fleet/hashing.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"

namespace pglb {

namespace {

using Clock = std::chrono::steady_clock;

/// The serializer emits a fixed key order, so a substring probe is an exact
/// status test — no parse needed on the hot path.
bool is_overloaded_response(const std::string& response) {
  return response.find("\"status\":\"overloaded\"") != std::string::npos;
}

struct OverloadHint {
  std::uint64_t retry_after_ms = 0;
  std::uint64_t queue_depth = 0;
};

OverloadHint overloaded_hint(const std::string& response) {
  try {
    const PlanResponse parsed = parse_plan_response(response);
    return {parsed.retry_after_ms, parsed.queue_depth};
  } catch (const std::exception&) {
    return {};
  }
}

}  // namespace

Router::Router(RouterOptions options, Registry* metrics)
    : options_(options), metrics_(metrics), fleet_(options.fleet) {}

Router::~Router() { stop(); }

void Router::count(std::string_view name, std::uint64_t delta) {
  if (metrics_ != nullptr) metrics_->count(name, delta);
}

void Router::set_inflight_gauge(const std::string& backend, std::uint64_t value) {
  if (metrics_ != nullptr) {
    metrics_->set_gauge("fleet." + backend + ".inflight",
                        static_cast<double>(value));
  }
}

void Router::set_queue_depth_gauge(const std::string& backend,
                                   std::uint64_t value) {
  if (metrics_ != nullptr) {
    metrics_->set_gauge("fleet." + backend + ".queue_depth",
                        static_cast<double>(value));
  }
}

std::size_t Router::add_backend(std::shared_ptr<Backend> backend, double weight) {
  return fleet_.add(std::move(backend), weight);
}

std::string Router::route(const std::string& line) {
  TraceSpan span("router.route", "fleet");
  const ScopedTimer timer(metrics_, "router.route");
  count("router.requests");

  // Routing key + deadline.  Unparseable lines still route (keyed on their
  // raw bytes): the backend's typed error response is the contract, and it
  // must be byte-identical to what a direct client would have seen.
  std::string key;
  std::string request_id;
  std::uint64_t deadline_ms = options_.default_deadline_ms;
  try {
    const PlanRequest request = parse_plan_request(line);
    key = routing_key(request);
    request_id = request.id;
    if (request.timeout_ms) deadline_ms = *request.timeout_ms;
  } catch (const std::exception&) {
    key = line;
  }

  // One consistent membership snapshot per request: the autoscaler may append
  // replicas mid-flight, and ranking must not see names and weights from two
  // different fleet generations.
  const FleetMembership fleet = fleet_.membership();
  const auto order = rank_backends(key, fleet.names, fleet.weights);
  const std::size_t max_attempts =
      options_.max_attempts == 0 ? order.size()
                                 : std::min(options_.max_attempts, order.size());

  const auto start = Clock::now();
  const auto deadline = deadline_ms == 0
                            ? Clock::time_point::max()
                            : start + std::chrono::milliseconds(deadline_ms);
  const bool may_hedge = options_.hedge_delay_ms > 0 && max_attempts > 1;
  const auto hedge_at =
      may_hedge ? start + std::chrono::milliseconds(options_.hedge_delay_ms)
                : Clock::time_point::max();

  struct InFlight {
    std::size_t index;
    bool is_hedge;
    Clock::time_point launched;
    std::future<std::string> future;
  };
  std::vector<InFlight> inflight;
  std::size_t cursor = 0;    // next rank to consider
  std::size_t attempts = 0;  // distinct backends contacted (hedge included)
  bool hedged = false;
  std::string last_overloaded;

  // Attempt accounting: launched minus harvested, mirrored into the obs
  // registry as the per-backend fleet.<name>.inflight gauge (the queue-depth
  // proxy the autoscaler samples).  Attempts still pending when the request
  // resolves (a losing hedge, an abandoned straggler) are released by the
  // scope guard — their responses drain through the backend's FIFO matching
  // without a router-side observer.
  const auto harvest_attempt = [&](std::size_t index) {
    set_inflight_gauge(fleet.names[index], fleet_.end_attempt(index));
  };
  struct AbandonGuard {
    Router* router;
    const FleetMembership& fleet_names;
    std::vector<InFlight>* inflight;
    ~AbandonGuard() {
      for (const InFlight& attempt : *inflight) {
        router->set_inflight_gauge(fleet_names.names[attempt.index],
                                   router->fleet_.end_attempt(attempt.index));
      }
    }
  } abandon_guard{this, fleet, &inflight};

  const auto launch = [&](bool is_hedge) -> bool {
    while (cursor < order.size() && attempts < max_attempts) {
      const std::size_t index = order[cursor++];
      if (!fleet_.eligible(index)) continue;
      ++attempts;
      count("fleet." + fleet.names[index] + ".routed");
      set_inflight_gauge(fleet.names[index], fleet_.begin_attempt(index));
      inflight.push_back(
          {index, is_hedge, Clock::now(), fleet_.backend(index)->submit(line)});
      return true;
    }
    return false;
  };

  if (!launch(false)) {
    // Every backend is down, draining, or parked: tell the client to retry
    // once the shortest backoff window could have passed.
    count("router.unroutable");
    return serialize_overloaded(request_id, 0, options_.fleet.base_backoff_ms);
  }

  for (;;) {
    // Harvest any finished attempt (ready futures first, FIFO among ready).
    bool progressed = false;
    for (std::size_t i = 0; i < inflight.size();) {
      if (inflight[i].future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        ++i;
        continue;
      }
      InFlight attempt = std::move(inflight[i]);
      inflight.erase(inflight.begin() + static_cast<std::ptrdiff_t>(i));
      progressed = true;
      harvest_attempt(attempt.index);
      try {
        std::string response = attempt.future.get();
        if (is_overloaded_response(response)) {
          // Typed backpressure: honour the backend's own retry-after hint
          // (remembering the depth it reported for the autoscaler), fail
          // over to the next replica meanwhile.
          fleet_.record_success(attempt.index);
          const OverloadHint hint = overloaded_hint(response);
          fleet_.defer(attempt.index, hint.retry_after_ms, hint.queue_depth);
          set_queue_depth_gauge(fleet.names[attempt.index], hint.queue_depth);
          count("router.overloaded");
          last_overloaded = std::move(response);
          continue;
        }
        fleet_.record_success(attempt.index);
        // Straggler bookkeeping (docs/CHAOS.md): every harvested answer is a
        // latency sample; a backend whose smoothed latency runs far past its
        // peers gets weight-decayed rather than waiting for it to go down.
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      attempt.launched)
                .count();
        if (fleet_.record_latency(attempt.index, elapsed_ms)) {
          count("router.stragglers");
        }
        set_queue_depth_gauge(fleet.names[attempt.index], 0);
        if (attempt.is_hedge) count("router.hedge_wins");
        if (tracing_enabled()) {
          span.set_sarg(intern_trace_label(fleet.names[attempt.index]));
        }
        return response;
      } catch (const BackendError&) {
        fleet_.record_failure(attempt.index);
        count("router.backend_errors");
      }
    }

    if (inflight.empty()) {
      if (launch(false)) {
        count("router.failovers");
        continue;
      }
      // Attempt chain exhausted.  An overloaded answer beats a synthetic
      // error: it is typed, truthful, and carries a retry hint.
      if (!last_overloaded.empty()) return last_overloaded;
      count("router.exhausted");
      PlanResponse response;
      response.id = request_id;
      response.ok = false;
      response.status = PlanStatus::kError;
      response.error = "fleet: all backends failed";
      return serialize_response(response);
    }
    if (progressed) continue;

    const auto now = Clock::now();
    if (now >= deadline) {
      // One line per request, always: expire the chain with a typed timeout
      // exactly as a single overwhelmed backend would.
      count("router.deadline_expired");
      PlanResponse response;
      response.id = request_id;
      response.ok = false;
      response.status = PlanStatus::kTimeout;
      response.error = "router: deadline of " + std::to_string(deadline_ms) +
                       " ms exceeded";
      return serialize_response(response);
    }
    if (!hedged && now >= hedge_at) {
      hedged = true;  // at most one duplicate per request
      if (launch(true)) count("router.hedges");
    }

    auto wake = std::min(deadline, now + std::chrono::milliseconds(1));
    if (!hedged) wake = std::min(wake, hedge_at);
    inflight.front().future.wait_until(wake);
  }
}

std::size_t Router::probe_once() {
  std::size_t healthy = 0;
  const std::size_t known = fleet_.size();  // replicas added later probe next round
  for (std::size_t i = 0; i < known; ++i) {
    if (!fleet_.probe_due(i)) continue;
    count("router.probes");
    auto future =
        fleet_.backend(i)->submit(R"({"type":"metrics","id":"fleet-probe"})");
    if (future.wait_for(std::chrono::milliseconds(options_.probe_timeout_ms)) !=
        std::future_status::ready) {
      // The response, if it ever comes, is consumed by the channel's FIFO
      // matching; the probe itself counts as a failure.
      fleet_.record_failure(i);
      count("router.probe_failures");
      continue;
    }
    try {
      future.get();
      fleet_.record_success(i);
      ++healthy;
    } catch (const BackendError&) {
      fleet_.record_failure(i);
      count("router.probe_failures");
    }
  }
  return healthy;
}

void Router::start() {
  if (options_.probe_interval_ms == 0 || prober_.joinable()) return;
  stopping_ = false;
  prober_ = std::thread([this] { prober_loop(); });
}

void Router::prober_loop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stopping_) {
    lock.unlock();
    probe_once();
    lock.lock();
    stop_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.probe_interval_ms),
                      [&] { return stopping_; });
  }
}

void Router::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

std::string Router::fleet_json() const {
  std::string out = "{\"backends\":";
  out += fleet_.status_json();
  out += ",\"hedge_delay_ms\":" + std::to_string(options_.hedge_delay_ms);
  out += ",\"probe_interval_ms\":" + std::to_string(options_.probe_interval_ms);
  out.push_back('}');
  return out;
}

}  // namespace pglb
