#include "fleet/registry.hpp"

#include <algorithm>
#include <chrono>

#include "util/json.hpp"

namespace pglb {

namespace {

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string_view to_string(BackendState state) noexcept {
  switch (state) {
    case BackendState::kUp: return "up";
    case BackendState::kDown: return "down";
    case BackendState::kDraining: return "draining";
  }
  return "unknown";
}

FleetRegistry::FleetRegistry(FleetOptions options) : options_(std::move(options)) {
  if (!options_.clock_ms) options_.clock_ms = steady_now_ms;
}

std::size_t FleetRegistry::add(std::shared_ptr<Backend> backend, double weight) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t index = backends_.size();
  names_.push_back(backend->name());
  weights_.push_back(weight > 0.0 ? weight : 1.0);
  backends_.push_back(std::move(backend));
  health_.emplace_back();
  return index;
}

std::size_t FleetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backends_.size();
}

std::shared_ptr<Backend> FleetRegistry::backend(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backends_[index];
}

FleetMembership FleetRegistry::membership() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FleetMembership snapshot{names_, weights_};
  // Straggler weight decay applies at snapshot time, so a recovery restores
  // the configured weight with no stored state to undo.
  for (std::size_t i = 0; i < health_.size(); ++i) {
    if (health_[i].degraded) {
      snapshot.weights[i] *= options_.straggler_weight_factor;
    }
  }
  return snapshot;
}

std::string FleetRegistry::name(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return names_[index];
}

std::uint64_t FleetRegistry::backoff_ms(std::uint64_t consecutive_failures) const {
  std::uint64_t window = options_.base_backoff_ms;
  // Doubling capped at max; the shift bound avoids overflow on long outages.
  for (std::uint64_t i = 1; i < consecutive_failures && i < 32; ++i) {
    window *= 2;
    if (window >= options_.max_backoff_ms) return options_.max_backoff_ms;
  }
  return window < options_.max_backoff_ms ? window : options_.max_backoff_ms;
}

bool FleetRegistry::eligible(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Health& h = health_[index];
  if (h.draining) return false;
  return options_.clock_ms() >= h.not_before_ms;
}

bool FleetRegistry::probe_due(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Health& h = health_[index];
  if (h.state == BackendState::kDown) return options_.clock_ms() >= h.not_before_ms;
  return true;  // up and draining backends are always probed (liveness)
}

void FleetRegistry::record_success(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  Health& h = health_[index];
  h.state = h.draining ? BackendState::kDraining : BackendState::kUp;
  h.consecutive_failures = 0;
  h.not_before_ms = 0;
  h.queue_depth = 0;  // a served request means the shed condition cleared
  ++h.successes;
}

void FleetRegistry::record_failure(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  Health& h = health_[index];
  h.state = h.draining ? BackendState::kDraining : BackendState::kDown;
  ++h.consecutive_failures;
  ++h.failures;
  h.not_before_ms = options_.clock_ms() + backoff_ms(h.consecutive_failures);
}

bool FleetRegistry::record_latency(std::size_t index, double elapsed_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  Health& h = health_[index];
  h.ewma_ms = h.latency_samples == 0
                  ? elapsed_ms
                  : h.ewma_ms + options_.latency_ewma_alpha * (elapsed_ms - h.ewma_ms);
  ++h.latency_samples;
  if (h.latency_samples < options_.straggler_min_samples) return false;

  // Judge against the median of the PEERS' EWMAs (self excluded, so one slow
  // backend cannot drag the yardstick toward itself), each peer mature.
  std::vector<double> peers;
  peers.reserve(health_.size());
  for (std::size_t i = 0; i < health_.size(); ++i) {
    if (i == index) continue;
    if (health_[i].latency_samples >= options_.straggler_min_samples) {
      peers.push_back(health_[i].ewma_ms);
    }
  }
  if (peers.empty()) return false;
  const auto mid = peers.begin() + static_cast<std::ptrdiff_t>(peers.size() / 2);
  std::nth_element(peers.begin(), mid, peers.end());
  const double median = *mid;
  if (median <= 0.0) return false;

  if (!h.degraded && h.ewma_ms > options_.straggler_factor * median) {
    h.degraded = true;
    return true;
  }
  if (h.degraded && h.ewma_ms < options_.straggler_recovery_factor * median) {
    h.degraded = false;
  }
  return false;
}

void FleetRegistry::defer(std::size_t index, std::uint64_t retry_after_ms,
                          std::uint64_t queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  Health& h = health_[index];
  const std::uint64_t until = options_.clock_ms() + retry_after_ms;
  if (until > h.not_before_ms) h.not_before_ms = until;
  if (queue_depth > 0) h.queue_depth = queue_depth;
}

std::uint64_t FleetRegistry::begin_attempt(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ++health_[index].inflight;
}

std::uint64_t FleetRegistry::end_attempt(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  Health& h = health_[index];
  if (h.inflight > 0) --h.inflight;
  return h.inflight;
}

void FleetRegistry::set_draining(std::size_t index, bool draining) {
  std::lock_guard<std::mutex> lock(mutex_);
  Health& h = health_[index];
  h.draining = draining;
  if (draining) {
    h.state = BackendState::kDraining;
  } else {
    h.state = h.consecutive_failures > 0 ? BackendState::kDown : BackendState::kUp;
  }
}

BackendStatus FleetRegistry::status(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Health& h = health_[index];
  return {names_[index],          weights_[index], h.state,
          h.consecutive_failures, h.not_before_ms, h.successes,
          h.failures,             h.inflight,      h.queue_depth,
          h.degraded,             h.ewma_ms,       h.latency_samples};
}

std::string FleetRegistry::status_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "[";
  for (std::size_t i = 0; i < health_.size(); ++i) {
    const Health& h = health_[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    append_json_string(out, names_[i]);
    out += ",\"state\":\"";
    out += to_string(h.state);
    out += "\",\"weight\":";
    append_json_number(out, weights_[i]);
    out += ",\"successes\":";
    append_json_number(out, static_cast<double>(h.successes));
    out += ",\"failures\":";
    append_json_number(out, static_cast<double>(h.failures));
    out += ",\"consecutive_failures\":";
    append_json_number(out, static_cast<double>(h.consecutive_failures));
    out += ",\"inflight\":";
    append_json_number(out, static_cast<double>(h.inflight));
    out += ",\"queue_depth\":";
    append_json_number(out, static_cast<double>(h.queue_depth));
    out += ",\"degraded\":";
    out += h.degraded ? "true" : "false";
    out += ",\"ewma_ms\":";
    append_json_number(out, h.ewma_ms);
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

}  // namespace pglb
