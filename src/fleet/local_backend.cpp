#include "fleet/local_backend.hpp"

namespace pglb {

LocalBackend::LocalBackend(std::string name, PlannerOptions planner_options,
                           ServerOptions server_options)
    : name_(std::move(name)),
      planner_(planner_options, &metrics_),
      server_(planner_, metrics_, server_options) {}

std::future<std::string> LocalBackend::submit(std::string line) {
  return server_.submit(std::move(line));
}

}  // namespace pglb
