#include "fleet/warming.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <map>
#include <utility>
#include <vector>

#include "fleet/backend.hpp"
#include "fleet/hashing.hpp"
#include "fleet/registry.hpp"
#include "machine/app_profile.hpp"
#include "obs/registry.hpp"
#include "service/protocol.hpp"

namespace pglb {

namespace {

using Clock = std::chrono::steady_clock;

/// Split keeping empty fields, so malformed keys ("a++b", "|app|2.1") are
/// detectable rather than silently collapsed.
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::optional<PlanRequest> plan_request_from_profile_key(const std::string& key) {
  const std::vector<std::string> fields = split(key, '|');
  if (fields.size() != 3) return std::nullopt;

  PlanRequest request;
  request.machines = split(fields[0], '+');
  for (const std::string& machine : request.machines) {
    if (machine.empty()) return std::nullopt;
  }

  const std::optional<AppKind> app = try_app_from_name(fields[1]);
  if (!app) return std::nullopt;
  request.app = *app;

  // The alpha field is canonical_alpha() output — a plain finite decimal.
  // Anything strtod does not consume whole, and any alpha outside the
  // power-law domain (must exceed 1), marks the key as not ours.
  const std::string& alpha_text = fields[2];
  if (alpha_text.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double alpha = std::strtod(alpha_text.c_str(), &end);
  if (errno != 0 || end != alpha_text.c_str() + alpha_text.size() ||
      !std::isfinite(alpha) || alpha <= 1.0) {
    return std::nullopt;
  }
  request.alpha = alpha;
  return request;
}

WarmReport warm_replica(FleetRegistry& fleet, std::size_t newcomer,
                        const WarmingOptions& options,
                        Registry* service_registry) {
  WarmReport report;
  if (options.per_backend_limit == 0 || options.max_prefetch == 0) return report;
  const FleetMembership membership = fleet.membership();
  if (newcomer >= membership.names.size() || membership.names.size() < 2) {
    return report;
  }

  // Phase 1: fan the warm_keys question out to every other eligible peer.
  PlanRequest ask;
  ask.type = RequestType::kWarmKeys;
  ask.limit = options.per_backend_limit;
  std::vector<std::future<std::string>> pending;
  for (std::size_t i = 0; i < membership.names.size(); ++i) {
    if (i == newcomer || !fleet.eligible(i)) continue;
    const std::shared_ptr<Backend> peer = fleet.backend(i);
    if (peer == nullptr) continue;
    ask.id = "warm-" + std::to_string(i);
    try {
      pending.push_back(peer->submit(serialize_request(ask)));
      ++report.peers_asked;
    } catch (const std::exception&) {
      // submit itself failed: the peer contributes nothing
    }
  }

  // Harvest under one shared deadline.  Keys aggregate into a key-sorted map
  // (max hits wins on duplicates) so the candidate order downstream is
  // deterministic regardless of which peer answered first.
  const auto fetch_deadline =
      Clock::now() + std::chrono::milliseconds(options.fetch_timeout_ms);
  std::map<std::string, std::uint64_t> hits_by_key;
  for (std::future<std::string>& future : pending) {
    if (future.wait_until(fetch_deadline) != std::future_status::ready) continue;
    try {
      const std::vector<WarmKey> keys = parse_warm_keys_response(future.get());
      ++report.peers_answered;
      for (const WarmKey& warm : keys) {
        const auto [it, inserted] = hits_by_key.emplace(warm.key, warm.hits);
        if (!inserted) it->second = std::max(it->second, warm.hits);
      }
    } catch (const std::exception&) {
      // BackendError or a malformed report: skip this peer
    }
  }
  report.keys_seen = hits_by_key.size();

  // Phase 2: keep only keys the rendezvous ranking hands to the newcomer —
  // the same ranking the router uses, so warming exactly prefills the slice
  // of key space real traffic will send here.
  std::vector<std::pair<std::string, std::uint64_t>> owned;
  for (const auto& [key, hits] : hits_by_key) {
    const std::vector<std::size_t> ranked =
        rank_backends(key, membership.names, membership.weights);
    if (!ranked.empty() && ranked.front() == newcomer) owned.emplace_back(key, hits);
  }
  report.keys_owned = owned.size();
  std::stable_sort(owned.begin(), owned.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (owned.size() > options.max_prefetch) owned.resize(options.max_prefetch);

  const std::shared_ptr<Backend> target = fleet.backend(newcomer);
  if (target == nullptr || owned.empty()) return report;

  // Phase 3: replay each owned key as a deadline-carrying plan request, so
  // the newcomer's single-flight cache profiles them before real traffic.
  std::vector<std::future<std::string>> prefetches;
  for (std::size_t n = 0; n < owned.size(); ++n) {
    std::optional<PlanRequest> request = plan_request_from_profile_key(owned[n].first);
    if (!request) {
      ++report.keys_failed;
      continue;
    }
    request->id = "warm-key-" + std::to_string(n);
    if (options.prefetch_timeout_ms > 0) {
      request->timeout_ms = options.prefetch_timeout_ms;
    }
    try {
      prefetches.push_back(target->submit(serialize_request(*request)));
    } catch (const std::exception&) {
      ++report.keys_failed;
    }
  }
  const auto prefetch_deadline =
      Clock::now() + std::chrono::milliseconds(options.prefetch_timeout_ms);
  for (std::future<std::string>& future : prefetches) {
    if (future.wait_until(prefetch_deadline) != std::future_status::ready) {
      ++report.keys_failed;
      continue;
    }
    try {
      const PlanResponse response = parse_plan_response(future.get());
      if (response.ok) {
        ++report.keys_warmed;
      } else {
        ++report.keys_failed;
      }
    } catch (const std::exception&) {
      ++report.keys_failed;
    }
  }

  if (report.keys_warmed > 0) {
    global_registry().count("persist.keys_warmed", report.keys_warmed);
    if (service_registry != nullptr) {
      service_registry->count("persist.keys_warmed", report.keys_warmed);
    }
  }
  return report;
}

}  // namespace pglb
