#include "fleet/spawn.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/portfile.hpp"

namespace pglb {

namespace {

std::string port_file_path(const SpawnOptions& options, const std::string& tag) {
  return options.port_dir + "/" + tag + ".port";
}

}  // namespace

ServeChild spawn_serve(const SpawnOptions& options, std::uint16_t port,
                       const std::string& tag) {
  std::string port_file;
  if (port == 0) {
    if (options.port_dir.empty()) {
      throw std::runtime_error(
          "spawn_serve: ephemeral port needs SpawnOptions.port_dir");
    }
    port_file = port_file_path(options, tag);
    std::remove(port_file.c_str());  // a respawned slot must not read stale
  }
  std::string snapshot_dir;
  if (!options.snapshot_dir.empty()) {
    // Per-replica snapshot home: two replicas must never clobber one
    // warm.snap, and a respawned tag must find its predecessor's file.
    if (::mkdir(options.snapshot_dir.c_str(), 0777) != 0 && errno != EEXIST) {
      throw std::runtime_error("spawn_serve: cannot create snapshot dir " +
                               options.snapshot_dir + ": " + std::strerror(errno));
    }
    snapshot_dir = options.snapshot_dir + "/" + tag;
    if (::mkdir(snapshot_dir.c_str(), 0777) != 0 && errno != EEXIST) {
      throw std::runtime_error("spawn_serve: cannot create snapshot dir " +
                               snapshot_dir + ": " + std::strerror(errno));
    }
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    std::vector<std::string> args = {
        options.serve_path,
        "--listen=" + std::to_string(port),
        "--threads=" + std::to_string(options.threads),
        "--scale=" + std::to_string(options.scale),
        "--queue=" + std::to_string(options.queue)};
    if (options.shed) args.emplace_back("--shed");
    if (!options.wire.empty()) args.emplace_back("--wire=" + options.wire);
    if (!port_file.empty()) args.emplace_back("--port-file=" + port_file);
    if (!snapshot_dir.empty()) {
      args.emplace_back("--snapshot-dir=" + snapshot_dir);
      if (options.snapshot_interval_ms > 0) {
        args.emplace_back("--snapshot-interval-ms=" +
                          std::to_string(options.snapshot_interval_ms));
      }
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(options.serve_path.c_str(), argv.data());
    std::perror("execv");
    _exit(127);
  }
  return {pid, port};
}

std::uint16_t wait_serve_ready(ServeChild& child, const SpawnOptions& options,
                               const std::string& tag,
                               std::uint64_t timeout_ms) {
  if (child.port == 0) {
    child.port = wait_port_file(port_file_path(options, tag), timeout_ms);
  }
  wait_listening(child.port, timeout_ms);
  return child.port;
}

void wait_listening(std::uint16_t port, std::uint64_t timeout_ms) {
  for (std::uint64_t waited = 0;; waited += 50) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port);
      const int rc =
          ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      ::close(fd);
      if (rc == 0) return;
    }
    if (waited >= timeout_ms) {
      throw std::runtime_error("backend on port " + std::to_string(port) +
                               " did not start listening");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace pglb
