#pragma once
// Router-driven peer warming (docs/PERSIST.md): when a replica joins (or
// re-joins) the fleet, rendezvous hashing hands it a slice of the key space —
// keys its peers have hot profile-cache entries for, which the newcomer would
// otherwise re-profile from scratch on first contact.  Warming closes that
// gap off the hot path:
//
//   1. ask every OTHER eligible replica for its hottest completed profile
//      keys (the warm_keys protocol request, bounded per peer);
//   2. keep only the keys the fleet's weighted rendezvous ranking assigns to
//      the newcomer — warming keys it will never be routed is wasted work;
//   3. replay each surviving key as a plan request against the newcomer
//      (hottest first, bounded count, per-request deadline), so its
//      single-flight cache profiles them before real traffic arrives.
//
// Every step is deadline-guarded and failure-tolerant: a peer that times out
// or answers garbage contributes nothing, a prefetch that fails is counted
// and skipped.  Warming can only ever improve the newcomer's first-contact
// hit rate — it never blocks routing and never fails the caller.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace pglb {

struct PlanRequest;
class FleetRegistry;
class Registry;

struct WarmingOptions {
  /// warm_keys `limit` sent to each peer (0 disables warming entirely).
  std::size_t per_backend_limit = 16;
  /// Cap on prefetch plan requests issued to the newcomer.
  std::size_t max_prefetch = 16;
  /// Deadline for harvesting all peers' warm_keys responses.
  std::uint64_t fetch_timeout_ms = 2'000;
  /// Per-prefetch plan deadline (becomes the request's timeout_ms) and the
  /// harvest deadline for the whole prefetch wave.
  std::uint64_t prefetch_timeout_ms = 5'000;
};

/// What one warming pass did — logged by the router/autoscaler and mirrored
/// into the persist.* counters.
struct WarmReport {
  std::size_t peers_asked = 0;     ///< warm_keys requests issued
  std::size_t peers_answered = 0;  ///< parseable warm_keys reports harvested
  std::size_t keys_seen = 0;       ///< unique keys across all reports
  std::size_t keys_owned = 0;      ///< keys rendezvous-ranked to the newcomer
  std::size_t keys_warmed = 0;     ///< prefetch plans that came back ok
  std::size_t keys_failed = 0;     ///< prefetches that errored or timed out
};

/// Invert Planner::profile_key(): "class1+class2|app|alpha" back into a plan
/// request (machines = the classes, alpha as given, no graph size — the
/// planner estimates at proxy scale).  Profiling this request on a replica
/// recreates exactly the cache entry the key names.  Returns nullopt for
/// anything that does not parse as a well-formed profile key.
std::optional<PlanRequest> plan_request_from_profile_key(const std::string& key);

/// Run one warming pass for fleet member `newcomer`.  Never throws; a fleet
/// of one (or an out-of-range index) is a no-op report.  Increments the
/// persist.keys_warmed counter (globally, plus `service_registry` when
/// given) once per successful prefetch.
WarmReport warm_replica(FleetRegistry& fleet, std::size_t newcomer,
                        const WarmingOptions& options = {},
                        Registry* service_registry = nullptr);

}  // namespace pglb
