#pragma once
// Transport abstraction of the fleet layer (docs/FLEET.md): a Backend is one
// planning-service replica — submit a raw request line, get a future for the
// raw response line.  The router only ever sees this interface, so the same
// routing/hedging/failover logic runs against in-process replicas
// (LocalBackend, tests and benches) and real `pglb_serve --listen` processes
// (TcpBackend, which speaks either line-JSON or the multiplexed binary
// framing of docs/WIRE.md — the payload bytes are identical either way).
//
// Error contract: transport problems (dead peer, broken pipe, connect
// refusal) surface as a BackendError thrown OUT OF THE FUTURE, never as a
// fabricated protocol response — the router must be able to tell "the
// backend answered badly" (typed response, returned to the client) from "the
// backend is gone" (failover + health bookkeeping).

#include <future>
#include <stdexcept>
#include <string>

namespace pglb {

/// Transport-level failure of one backend: the request may or may not have
/// executed remotely (plans are idempotent, so the router is free to retry
/// elsewhere).
class BackendError : public std::runtime_error {
 public:
  BackendError(const std::string& backend, const std::string& what)
      : std::runtime_error("backend '" + backend + "': " + what),
        backend_(backend) {}

  const std::string& backend() const noexcept { return backend_; }

 private:
  std::string backend_;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable display/registry name ("b0", "127.0.0.1:7581", ...).
  virtual const std::string& name() const = 0;

  /// Enqueue one raw request line.  The future yields the raw response line
  /// or throws BackendError on transport failure.  Thread-safe.  Callers must
  /// NOT assume futures complete in submission order: over the binary wire
  /// (docs/WIRE.md) a backend answers out of order, matching responses to
  /// requests by id.  Only the legacy line-JSON transport is FIFO.
  virtual std::future<std::string> submit(std::string line) = 0;
};

}  // namespace pglb
