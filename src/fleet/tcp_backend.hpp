#pragma once
// TCP backend: one `pglb_serve --listen <port>` process behind the Backend
// interface, multiplexed over a single persistent loopback connection.
//
// The line protocol answers in input order per connection (PlanServer's
// serve_stream reorders worker output), so the channel needs no request ids
// on the wire: submit() appends the line and queues a promise; a reader
// thread fulfils promises strictly FIFO as response lines arrive.  Requests
// from many router threads pipeline on the one connection — exactly the
// windowed-pipelining shape pglb_loadgen uses, now wrapped in a reusable
// class.
//
// Failure semantics: any read or write error fails EVERY pending promise
// with BackendError (ordering is unrecoverable once the stream breaks) and
// tears the connection down; the next submit() transparently reconnects.
// The router turns those BackendErrors into failover + health bookkeeping.

#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "fleet/backend.hpp"

namespace pglb {

class TcpBackend : public Backend {
 public:
  /// Does not connect — the first submit() does (so a fleet can be declared
  /// before its processes finish starting).
  TcpBackend(std::string name, std::uint16_t port,
             std::string host = "127.0.0.1");
  ~TcpBackend() override;

  TcpBackend(const TcpBackend&) = delete;
  TcpBackend& operator=(const TcpBackend&) = delete;

  const std::string& name() const override { return name_; }
  std::future<std::string> submit(std::string line) override;

 private:
  bool connect_locked(std::string* error);
  void fail_pending_locked(const std::string& what);
  void reader_loop(int fd);

  std::string name_;
  std::string host_;
  std::uint16_t port_;

  std::mutex mutex_;
  int fd_ = -1;                                 // -1 = disconnected
  std::deque<std::promise<std::string>> pending_;
  std::thread reader_;
};

}  // namespace pglb
