#pragma once
// TCP backend: one `pglb_serve --listen <port>` process behind the Backend
// interface, multiplexed over a single persistent connection.
//
// Transport negotiation (docs/WIRE.md): on connect the backend sends one
// `{"hello":...}` line.  A frame-aware server acks and the connection speaks
// length-prefixed, request-id-tagged binary frames — many requests in flight,
// responses matched by id in ANY order, so one slow request never stalls the
// answers behind it.  An older server rejects the hello with its usual typed
// parse error, and the backend falls back to plain line-JSON with FIFO
// matching, byte-identical to the pre-upgrade protocol.
//
// Write path (the Grappa aggregator idiom): submit() never touches the
// socket.  It enqueues the encoded frame/line on a per-connection send queue
// and returns; a dedicated writer thread drains the queue, coalescing
// whatever has accumulated into one gathered sendmsg() per wakeup.  Callers
// are therefore never blocked behind a full socket buffer, and bursts of
// small requests cost one syscall, not one each.
//
// Failure semantics: a fatal read or write error fails EVERY pending promise
// with BackendError (for line mode the ordering is unrecoverable; for binary
// mode the peer is simply gone) and tears the connection down; the next
// submit() transparently reconnects and re-negotiates.  EINTR retries the
// syscall; transient resource pressure (EAGAIN/ENOBUFS/ENOMEM) retries after
// a breather — neither is a dead peer (wire::classify_io_errno).  The router
// turns BackendErrors into failover + health bookkeeping.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/backend.hpp"

namespace pglb {

class Registry;

/// Which transport submit() uses once connected.
enum class WireMode {
  kAuto,      ///< hello handshake; binary if acked, line-JSON otherwise
  kLineJson,  ///< never send a hello: byte-identical legacy protocol
  kBinary,    ///< hello required; a declined handshake is a connect failure
};

/// Jittered exponential backoff between reconnect attempts.  Without it a
/// dead replica is re-dialed on EVERY submit — a tight retry loop that turns
/// into a reconnect storm the moment the replica comes back (docs/CHAOS.md).
/// The window doubles per consecutive connect failure up to `max_ms`, and
/// each wait is drawn uniformly from [window/2, window] with a splitmix64
/// chain seeded off the backend name, so a fleet's backends never thunder in
/// phase yet every drill replays identically.
struct ReconnectPolicy {
  std::uint64_t base_ms = 100;
  std::uint64_t max_ms = 5000;
};

class TcpBackend : public Backend {
 public:
  /// Does not connect — the first submit() does (so a fleet can be declared
  /// before its processes finish starting).  `metrics` (optional) receives
  /// the wire.* counters/gauges; nullptr falls back to global_registry().
  TcpBackend(std::string name, std::uint16_t port,
             std::string host = "127.0.0.1", WireMode mode = WireMode::kAuto,
             Registry* metrics = nullptr);

  /// Adopt an already-connected descriptor (tests: one end of a socketpair).
  /// The backend owns and eventually closes `connected_fd`.  Negotiation
  /// still happens on the first submit().  No reconnect on failure — once an
  /// adopted stream breaks, every later submit fails with BackendError.
  TcpBackend(std::string name, int connected_fd, WireMode mode,
             Registry* metrics = nullptr);

  ~TcpBackend() override;

  TcpBackend(const TcpBackend&) = delete;
  TcpBackend& operator=(const TcpBackend&) = delete;

  const std::string& name() const override { return name_; }
  std::future<std::string> submit(std::string line) override;

  /// Re-point the backend at a new port (an autoscaled replica respawned on
  /// a fresh ephemeral port keeps its fleet name — and its rendezvous cache
  /// keys — while the endpoint moves).  Any live connection is torn down;
  /// pending requests fail with BackendError; the next submit() reconnects.
  void set_port(std::uint16_t port);
  std::uint16_t port() const;

  /// Replace the reconnect backoff policy (tests shrink the windows).  Also
  /// resets any backoff currently in force.
  void set_reconnect_policy(ReconnectPolicy policy);

  /// Transport counters (docs/WIRE.md), mostly for tests and debugging.
  struct Stats {
    std::uint64_t requests = 0;    ///< lines/frames accepted by submit()
    std::uint64_t batches = 0;     ///< writer wakeups that reached the kernel
    std::uint64_t messages = 0;    ///< frames/lines flushed inside batches
    std::uint64_t reconnects = 0;  ///< successful (re)connects
    std::uint64_t connect_failures = 0;  ///< failed dial/negotiate attempts
    std::uint64_t backoff_skips = 0;  ///< submits failed fast inside a window
    bool binary = false;           ///< live connection negotiated frames
    bool crc = false;              ///< live connection negotiated CRC frames
  };
  Stats stats() const;

 private:
  bool connect_locked(std::string* error);
  bool dial_locked(std::string* error);
  bool negotiate(int fd, std::string* preamble, std::string* error);
  void teardown_locked(const std::string& what);
  void fail_pending_locked(const std::string& what);
  void reap_locked(std::unique_lock<std::mutex>& lock);
  void reader_loop(int fd, std::uint64_t epoch, bool binary,
                   std::string preamble);
  void writer_loop(int fd, std::uint64_t epoch);

  Registry& metrics_registry() const;

  std::string name_;
  std::string host_;
  std::uint16_t port_;
  WireMode mode_;
  Registry* metrics_ = nullptr;  // nullptr = global_registry()
  bool adopted_ = false;

  mutable std::mutex mutex_;
  int fd_ = -1;        // -1 = disconnected
  int dead_fd_ = -1;   // torn-down fd awaiting close once its threads join
  int adopted_fd_ = -1;  // handed to the ctor, consumed by the first connect
  std::uint64_t epoch_ = 0;  // bumped on every teardown; stale threads exit
  bool binary_ = false;      // negotiated mode of the live connection
  bool crc_ = false;         // negotiated CRC trailers on the live connection
  ReconnectPolicy reconnect_policy_{};
  std::uint64_t connect_failure_streak_ = 0;
  std::uint64_t next_dial_at_ms_ = 0;  // steady-clock ms; 0 = dial freely
  std::uint64_t backoff_rng_ = 0;      // splitmix64 chain for dial jitter
  std::uint64_t next_id_ = 1;
  std::deque<std::promise<std::string>> pending_fifo_;  // line mode
  std::unordered_map<std::uint64_t, std::promise<std::string>> pending_by_id_;
  std::vector<std::string> sendq_;  // encoded, ready-to-write messages
  std::condition_variable sendq_cv_;
  Stats stats_;
  std::thread reader_;
  std::thread writer_;
};

}  // namespace pglb
