#pragma once
// In-process backend: a full Planner + PlanServer stack behind the Backend
// interface.  This is what tests and benches route against — N LocalBackends
// are N genuinely independent replicas (separate profile caches, separate
// metrics), minus the TCP hop, so routing properties (cache-hit
// concentration, byte-identical plans, failover) can be asserted
// deterministically without sockets or child processes.

#include <future>
#include <memory>
#include <string>

#include "fleet/backend.hpp"
#include "service/planner.hpp"
#include "service/server.hpp"

namespace pglb {

class LocalBackend : public Backend {
 public:
  LocalBackend(std::string name, PlannerOptions planner_options = {},
               ServerOptions server_options = {});

  const std::string& name() const override { return name_; }
  std::future<std::string> submit(std::string line) override;

  /// This replica's own metrics (profile_cache_hits / _misses live here) —
  /// the per-backend counters the hit-rate assertions read.
  ServiceMetrics& metrics() noexcept { return metrics_; }
  Planner& planner() noexcept { return planner_; }

 private:
  std::string name_;
  ServiceMetrics metrics_;
  Planner planner_;
  PlanServer server_;
};

}  // namespace pglb
