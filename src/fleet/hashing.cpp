#include "fleet/hashing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/proxy_suite.hpp"
#include "core/time_database.hpp"
#include "gen/alpha_solver.hpp"
#include "service/protocol.hpp"
#include "util/hash.hpp"

namespace pglb {

namespace {

/// Table II proxy alphas — the suite every backend deploys at startup
/// (core/proxy_suite.cpp seeds exactly these three).
constexpr double kSuiteAlphas[] = {1.95, 2.1, 2.3};

}  // namespace

std::uint64_t hash_bytes(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

double routing_proxy_alpha(double alpha) noexcept {
  double best = kSuiteAlphas[0];
  double best_gap = std::numeric_limits<double>::infinity();
  for (const double suite_alpha : kSuiteAlphas) {
    const double gap = std::abs(alpha - suite_alpha);
    if (gap < best_gap) {
      best = suite_alpha;
      best_gap = gap;
    }
  }
  return best_gap <= ProxySuite::kCoverageMargin ? best : alpha;
}

std::string routing_key(const PlanRequest& request) {
  // Delta requests are STATEFUL: every delta for a base must land on the
  // replica holding that base's live graph and scorer state, so they route
  // by base name alone (docs/DYNAMIC.md) — not by the profile-key mirror,
  // which would scatter a base's stream as its creation parameters are
  // omitted on updates.
  if (request.type == RequestType::kDelta) return "dyn|" + request.base;
  // Same shape as Planner::profile_key(): sorted+deduped classes, app name,
  // canonical proxy alpha.
  std::vector<std::string> classes = request.machines;
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  std::string key;
  for (const std::string& c : classes) {
    if (!key.empty()) key.push_back('+');
    key += c;
  }
  key.push_back('|');
  key += to_string(request.app);
  key.push_back('|');
  double alpha;
  if (request.alpha) {
    alpha = *request.alpha;
  } else if (request.vertices > 0 && request.edges > 0) {
    const auto vertices = static_cast<VertexId>(std::min<std::uint64_t>(
        request.vertices, std::numeric_limits<VertexId>::max()));
    alpha = fit_alpha_clamped(vertices, request.edges);
  } else {
    alpha = 0.0;  // metrics requests carry no graph; key is still stable
  }
  key += canonical_alpha(routing_proxy_alpha(alpha));
  return key;
}

std::vector<std::size_t> rank_backends(std::string_view key,
                                       std::span<const std::string> names,
                                       std::span<const double> weights) {
  struct Ranked {
    double score;
    std::uint64_t hash;
    std::size_t index;
  };
  const std::uint64_t key_hash = hash_bytes(key);
  std::vector<Ranked> ranked;
  ranked.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::uint64_t h = hash_combine(key_hash, hash_bytes(names[i]));
    // Clamp the unit hash away from 0 so ln() stays finite; 1 is unreachable
    // (hash_to_unit yields [0, 1)).
    const double u = std::max(hash_to_unit(h), 0x1.0p-53);
    const double w = i < weights.size() && weights[i] > 0.0 ? weights[i] : 1.0;
    ranked.push_back({-w / std::log(u), h, i});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.hash != b.hash) return a.hash > b.hash;
    return a.index < b.index;
  });
  std::vector<std::size_t> order;
  order.reserve(ranked.size());
  for (const Ranked& r : ranked) order.push_back(r.index);
  return order;
}

}  // namespace pglb
