#pragma once
// Request→backend placement for the fleet router (docs/FLEET.md).
//
// Two pieces:
//
//  1. routing_key(request): a pure mirror of the planner's profile-cache key
//     (classes|app|alpha).  Requests that would share a profile-cache entry on
//     a backend produce the same routing key, so sending equal keys to the
//     same backend concentrates cache hits instead of spraying the same
//     profile across the fleet.
//
//  2. rank_backends(key, names, weights): weighted rendezvous (highest random
//     weight) hashing.  Every (key, backend) pair gets an independent hash;
//     the backend with the best score wins.  Removing a backend only moves
//     the keys that backend owned — no global reshuffle — and the per-backend
//     weight skews ownership share in proportion (a CCR-style knob: give a
//     big replica weight 2.0 and it owns ~2x the key space).
//
// Both functions are deterministic and state-free: any router instance, on
// any host, ranks the same fleet identically.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pglb {

struct PlanRequest;

/// FNV-1a 64-bit over the bytes of `text` (stable across platforms; the
/// rendezvous scores must not depend on std::hash).
std::uint64_t hash_bytes(std::string_view text) noexcept;

/// The proxy alpha a backend will resolve this request alpha to, assuming the
/// stock Table II suite: the nearest of {1.95, 2.1, 2.3} when within
/// ProxySuite::kCoverageMargin, otherwise `alpha` itself (the backend would
/// generate an on-demand proxy at exactly that alpha).  Pure — it cannot see
/// on-demand proxies a backend grew at runtime, so two out-of-range alphas
/// within the margin of each other may key apart here while colliding on the
/// backend.  That costs a cache hit, never correctness.
double routing_proxy_alpha(double alpha) noexcept;

/// Mirror of Planner::profile_key(): "class1+class2|app|alpha" with classes
/// sorted and deduplicated, alpha in canonical_alpha() form after
/// routing_proxy_alpha().  Metrics requests (no machines/app constraints
/// enforced by the parser) still produce a stable key.
std::string routing_key(const PlanRequest& request);

/// Rendezvous ranking: all backend indices ordered best-first for `key`.
/// `weights` may be empty (uniform) or one positive weight per backend.
/// Score for backend i is -w_i / ln(u_i) with u_i a unit hash of
/// (key, names[i]) — the standard weighted-HRW transform, where backend i's
/// win probability is proportional to w_i.  Ties (identical scores) break by
/// hash then index, so the order is total and deterministic.
std::vector<std::size_t> rank_backends(std::string_view key,
                                       std::span<const std::string> names,
                                       std::span<const double> weights = {});

}  // namespace pglb
