#include "engine/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace pglb {

namespace {
/// Per-machine accounting shards only on clusters big enough to repay the
/// fan-out; the common test clusters (a handful of machines) stay inline.
constexpr std::size_t kMachineGrain = 64;
}  // namespace

VirtualClusterExecutor::VirtualClusterExecutor(const Cluster& cluster, const AppProfile& app,
                                               const WorkloadTraits& traits)
    : cluster_(&cluster),
      app_(&app),
      work_scale_(traits.work_scale),
      energy_(std::vector<MachineSpec>(cluster.machines().begin(), cluster.machines().end())),
      activity_(cluster.size()) {
  if (!(work_scale_ >= 1.0)) {
    throw std::invalid_argument("VirtualClusterExecutor: work_scale must be >= 1");
  }
  throughputs_.reserve(cluster.size());
  for (MachineId m = 0; m < cluster.size(); ++m) {
    throughputs_.push_back(throughput_ops(cluster.machine(m), app, traits));
  }
}

void VirtualClusterExecutor::set_interference(InterferenceSchedule schedule) {
  if (supersteps_ > 0 || finished_) {
    throw std::logic_error("set_interference: must be called before execution starts");
  }
  interference_ = std::move(schedule);
}

void VirtualClusterExecutor::record_superstep(std::span<const double> ops,
                                              std::span<const double> comm_bytes) {
  // Host time of the accounting pass, arg = superstep index.  The virtual
  // BSP schedule itself is bridged separately (append_trace_spans).
  PGLB_TRACE_SPAN_ARG("engine.superstep", "engine",
                      static_cast<std::uint64_t>(supersteps_));
  if (finished_) throw std::logic_error("record_superstep after finish()");
  if (ops.size() != cluster_->size() || comm_bytes.size() != cluster_->size()) {
    throw std::invalid_argument("record_superstep: per-machine vector size mismatch");
  }

  // Shared mirror-exchange phase: a collective over the total traffic of the
  // superstep.  Every machine is engaged for its full duration.
  double total_bytes = 0.0;
  for (const double b : comm_bytes) total_bytes += b;
  const double exchange = cluster_->network().exchange_seconds(work_scale_ * total_bytes);

  // Per-machine accounting: every machine owns its busy[m]/activity_[m]
  // slots, so the loop shards freely.  Only total_ops_ is a cross-machine
  // float reduction; it is summed afterwards in machine order, keeping the
  // report bit-identical at any thread count.
  std::vector<double> busy(cluster_->size());
  parallel_for(pool_or_global(pool_), cluster_->size(), kMachineGrain,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t m = begin; m < end; ++m) {
                   // work_scale re-inflates counts measured on a scaled-down
                   // graph to paper scale, keeping the compute/exchange
                   // proportions scale-invariant.  Interference derates this
                   // machine's throughput for this superstep.
                   const double effective =
                       throughputs_[m] * interference_.factor(static_cast<MachineId>(m),
                                                              supersteps_);
                   const double compute = work_scale_ * ops[m] / effective;
                   busy[m] = compute + exchange;
                   activity_[m].compute_seconds += compute;
                   activity_[m].comm_seconds += exchange;
                   activity_[m].ops += ops[m];
                 }
               });
  for (const double o : ops) total_ops_ += o;
  ++supersteps_;

  if (app_->synchronous) {
    // BSP barrier at the end of compute, then the collective exchange: the
    // superstep lasts straggler-compute + exchange.
    const auto straggler = static_cast<MachineId>(
        std::max_element(busy.begin(), busy.end()) - busy.begin());
    const double window = busy[straggler];
    energy_.record_interval(busy, window);
    for (MachineId m = 0; m < cluster_->size(); ++m) {
      activity_[m].idle_seconds += window - busy[m];
    }
    makespan_ += window;

    SuperstepTrace step;
    step.window_seconds = window;
    step.exchange_seconds = exchange;
    step.straggler = straggler;
    for (const double o : ops) step.total_ops += o;
    trace_.push_back(step);
  }
  // Asynchronous apps take no per-superstep barrier: busy time accumulated in
  // activity_ settles into makespan/energy at finish().
}

ExecReport VirtualClusterExecutor::finish(std::string app_name, bool converged) {
  if (finished_) throw std::logic_error("finish() called twice");
  finished_ = true;
  global_registry().count("engine.runs");
  global_registry().count("engine.supersteps", static_cast<std::uint64_t>(supersteps_));

  if (!app_->synchronous) {
    // Async: the run ends when the busiest machine drains its work.
    std::vector<double> busy(cluster_->size());
    double window = 0.0;
    for (MachineId m = 0; m < cluster_->size(); ++m) {
      busy[m] = activity_[m].compute_seconds + activity_[m].comm_seconds;
      window = std::max(window, busy[m]);
    }
    energy_.record_interval(busy, window);
    for (MachineId m = 0; m < cluster_->size(); ++m) {
      activity_[m].idle_seconds = window - busy[m];
    }
    makespan_ = window;
  }

  ExecReport report;
  report.app_name = std::move(app_name);
  report.makespan_seconds = makespan_;
  report.supersteps = supersteps_;
  report.converged = converged;
  report.total_ops = total_ops_;
  report.per_machine = activity_;
  report.trace = std::move(trace_);
  for (MachineId m = 0; m < cluster_->size(); ++m) {
    report.per_machine[m].joules = energy_.per_machine()[m].joules;
  }
  report.total_joules = energy_.total_joules();
  return report;
}

std::vector<double> mirror_sync_bytes(const DistributedGraph& dg, const AppProfile& app) {
  std::vector<double> bytes(dg.num_machines());
  for (MachineId m = 0; m < dg.num_machines(); ++m) {
    bytes[m] = 2.0 * app.bytes_per_mirror * static_cast<double>(dg.mirrors_on(m));
  }
  return bytes;
}

}  // namespace pglb
