#pragma once
// Execution report of one distributed application run: the virtual-time and
// energy numbers that every evaluation figure (9, 10) is built from.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "machine/energy_model.hpp"

namespace pglb {

struct MachineActivity {
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  double idle_seconds = 0.0;
  double ops = 0.0;
  double joules = 0.0;
};

/// One superstep of the schedule, for straggler analysis.
struct SuperstepTrace {
  double window_seconds = 0.0;    ///< barrier-to-barrier duration
  double exchange_seconds = 0.0;  ///< shared mirror-exchange portion
  MachineId straggler = 0;        ///< machine whose compute defined the window
  double total_ops = 0.0;
};

struct ExecReport {
  std::string app_name;
  double makespan_seconds = 0.0;   ///< virtual wall-clock of the whole run
  double total_joules = 0.0;
  int supersteps = 0;
  bool converged = false;
  double total_ops = 0.0;
  std::vector<MachineActivity> per_machine;
  /// Chronological per-superstep schedule (synchronous apps; empty for
  /// asynchronous execution, which has no barriers to trace).
  std::vector<SuperstepTrace> trace;

  /// Fraction of synchronous supersteps stalled by the given machine.
  double straggler_fraction(MachineId machine) const noexcept;

  /// Fraction of aggregate machine-time spent idling at barriers — the
  /// imbalance waste the paper's method removes.
  double idle_fraction() const noexcept;

  std::string summary() const;
};

/// Bridge a run's synchronous superstep schedule into the span tracer as
/// virtual-time spans on track `track` of the "virtual cluster" process
/// (pid 2 of the Chrome trace): one "superstep" span per barrier window
/// (arg = straggler machine) with a nested "exchange" span for the
/// mirror-sync tail.  No-op when tracing is disabled or the trace is empty
/// (asynchronous apps record no barriers).
void append_trace_spans(const ExecReport& report, std::int32_t track = 0);

}  // namespace pglb
