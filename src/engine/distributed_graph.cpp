#include "engine/distributed_graph.hpp"

#include <stdexcept>

namespace pglb {

std::vector<double> estimated_memory_gb(const DistributedGraph& dg, double work_scale) {
  if (!(work_scale >= 1.0)) {
    throw std::invalid_argument("estimated_memory_gb: work_scale must be >= 1");
  }
  constexpr double kBytesPerEdge = 32.0;
  constexpr double kBytesPerReplica = 96.0;
  std::vector<double> gb(dg.num_machines(), 0.0);
  for (MachineId m = 0; m < dg.num_machines(); ++m) {
    const double replicas =
        static_cast<double>(dg.masters_on(m)) + static_cast<double>(dg.mirrors_on(m));
    const double bytes = work_scale * (kBytesPerEdge * static_cast<double>(
                                           dg.local_edges(m).size()) +
                                       kBytesPerReplica * replicas);
    gb[m] = bytes / 1e9;
  }
  return gb;
}

std::uint64_t DistributedGraph::total_mirrors() const noexcept {
  std::uint64_t total = 0;
  for (const VertexId m : mirrors_per_machine_) total += m;
  return total;
}

DistributedGraph build_distributed(const EdgeList& graph,
                                   const PartitionAssignment& assignment) {
  if (assignment.edge_to_machine.size() != graph.num_edges()) {
    throw std::invalid_argument("build_distributed: assignment/graph size mismatch");
  }
  if (assignment.num_machines == 0 || assignment.num_machines > 64) {
    throw std::invalid_argument("build_distributed: machine count must be in [1, 64]");
  }

  DistributedGraph dg;
  dg.num_vertices_ = graph.num_vertices();
  dg.num_machines_ = assignment.num_machines;
  dg.num_edges_ = graph.num_edges();
  dg.local_edges_.resize(assignment.num_machines);
  dg.replica_mask_.assign(graph.num_vertices(), 0);
  dg.master_.assign(graph.num_vertices(), kInvalidMachine);
  dg.mirrors_per_machine_.assign(assignment.num_machines, 0);
  dg.masters_per_machine_.assign(assignment.num_machines, 0);

  const auto edge_counts = assignment.machine_edge_counts();
  for (MachineId m = 0; m < assignment.num_machines; ++m) {
    dg.local_edges_[m].reserve(edge_counts[m]);
  }

  // Per-vertex, per-machine edge tallies to pick masters.  Stored sparsely:
  // tally[v * M + m] would be O(V*M) — acceptable for M <= 64 but wasteful;
  // use a flat vector only when M is small, which it always is here.
  std::vector<std::uint32_t> tallies(
      static_cast<std::size_t>(graph.num_vertices()) * assignment.num_machines, 0);

  EdgeId index = 0;
  for (const Edge& e : graph.edges()) {
    const MachineId m = assignment.edge_to_machine[index++];
    dg.local_edges_[m].push_back(e);
    dg.replica_mask_[e.src] |= std::uint64_t{1} << m;
    dg.replica_mask_[e.dst] |= std::uint64_t{1} << m;
    ++tallies[static_cast<std::size_t>(e.src) * assignment.num_machines + m];
    ++tallies[static_cast<std::size_t>(e.dst) * assignment.num_machines + m];
  }

  std::uint64_t total_replicas = 0;
  VertexId present = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::uint64_t mask = dg.replica_mask_[v];
    if (mask == 0) continue;
    ++present;
    // Master: replica with the largest local edge tally (lowest id on ties).
    MachineId master = kInvalidMachine;
    std::uint32_t best_tally = 0;
    for (MachineId m = 0; m < assignment.num_machines; ++m) {
      if ((mask & (std::uint64_t{1} << m)) == 0) continue;
      ++total_replicas;
      const std::uint32_t tally =
          tallies[static_cast<std::size_t>(v) * assignment.num_machines + m];
      if (master == kInvalidMachine || tally > best_tally) {
        master = m;
        best_tally = tally;
      }
    }
    dg.master_[v] = master;
    ++dg.masters_per_machine_[master];
    for (MachineId m = 0; m < assignment.num_machines; ++m) {
      if (m != master && (mask & (std::uint64_t{1} << m)) != 0) {
        ++dg.mirrors_per_machine_[m];
      }
    }
  }
  dg.replication_factor_ =
      present == 0 ? 0.0
                   : static_cast<double>(total_replicas) / static_cast<double>(present);
  return dg;
}

}  // namespace pglb
