#include "engine/exec_report.hpp"

#include <cmath>
#include <sstream>

#include "obs/trace.hpp"

namespace pglb {

double ExecReport::straggler_fraction(MachineId machine) const noexcept {
  if (trace.empty()) return 0.0;
  std::size_t stalls = 0;
  for (const SuperstepTrace& step : trace) {
    if (step.straggler == machine) ++stalls;
  }
  return static_cast<double>(stalls) / static_cast<double>(trace.size());
}

double ExecReport::idle_fraction() const noexcept {
  double busy = 0.0, idle = 0.0;
  for (const MachineActivity& a : per_machine) {
    busy += a.compute_seconds + a.comm_seconds;
    idle += a.idle_seconds;
  }
  const double total = busy + idle;
  return total > 0.0 ? idle / total : 0.0;
}

void append_trace_spans(const ExecReport& report, std::int32_t track) {
  if (!tracing_enabled() || report.trace.empty()) return;
  Tracer& tracer = Tracer::instance();
  auto to_ns = [](double seconds) {
    return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
  };
  double t = 0.0;
  for (const SuperstepTrace& step : report.trace) {
    const std::uint64_t start = to_ns(t);
    const std::uint64_t end = to_ns(t + step.window_seconds);
    tracer.emit_complete("superstep", "virtual", start, end,
                         static_cast<std::uint64_t>(step.straggler), track);
    const std::uint64_t exchange_start = to_ns(t + step.window_seconds - step.exchange_seconds);
    tracer.emit_complete("exchange", "virtual", exchange_start, end, kTraceNoArg, track);
    t += step.window_seconds;
  }
}

std::string ExecReport::summary() const {
  std::ostringstream os;
  os << app_name << ": makespan=" << makespan_seconds << "s, energy=" << total_joules
     << "J, supersteps=" << supersteps << ", idle=" << idle_fraction() * 100.0 << "%";
  return os.str();
}

}  // namespace pglb
