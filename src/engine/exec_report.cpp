#include "engine/exec_report.hpp"

#include <sstream>

namespace pglb {

double ExecReport::straggler_fraction(MachineId machine) const noexcept {
  if (trace.empty()) return 0.0;
  std::size_t stalls = 0;
  for (const SuperstepTrace& step : trace) {
    if (step.straggler == machine) ++stalls;
  }
  return static_cast<double>(stalls) / static_cast<double>(trace.size());
}

double ExecReport::idle_fraction() const noexcept {
  double busy = 0.0, idle = 0.0;
  for (const MachineActivity& a : per_machine) {
    busy += a.compute_seconds + a.comm_seconds;
    idle += a.idle_seconds;
  }
  const double total = busy + idle;
  return total > 0.0 ? idle / total : 0.0;
}

std::string ExecReport::summary() const {
  std::ostringstream os;
  os << app_name << ": makespan=" << makespan_seconds << "s, energy=" << total_joules
     << "J, supersteps=" << supersteps << ", idle=" << idle_fraction() * 100.0 << "%";
  return os.str();
}

}  // namespace pglb
