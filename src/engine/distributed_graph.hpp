#pragma once
// Graph finalisation (the "finalize" step in the paper's Fig. 7b flow):
// materialise the per-machine edge partitions, decide each vertex's master
// machine and enumerate mirrors.  Mirrors are the replicated vertex segments
// of a vertex cut (Fig. 3) and drive the engine's communication model.

#include <vector>

#include "graph/edge_list.hpp"
#include "partition/partitioner.hpp"

namespace pglb {

class DistributedGraph {
 public:
  DistributedGraph() = default;

  VertexId num_vertices() const noexcept { return num_vertices_; }
  MachineId num_machines() const noexcept { return num_machines_; }
  EdgeId num_edges() const noexcept { return num_edges_; }

  /// Edges owned by machine m, in stream order.
  std::span<const Edge> local_edges(MachineId m) const { return local_edges_.at(m); }

  /// Machines holding at least one edge of v (bitmask).
  std::uint64_t replica_mask(VertexId v) const { return replica_mask_.at(v); }

  /// Master machine of v (the replica holding most of v's edges; ties to the
  /// lowest machine id).  kInvalidMachine for isolated vertices.
  MachineId master(VertexId v) const { return master_.at(v); }

  /// Number of mirror (non-master) replicas on machine m.
  VertexId mirrors_on(MachineId m) const { return mirrors_per_machine_.at(m); }
  /// Number of master vertices on machine m.
  VertexId masters_on(MachineId m) const { return masters_per_machine_.at(m); }

  std::uint64_t total_mirrors() const noexcept;

  /// Average replicas per non-isolated vertex.
  double replication_factor() const noexcept { return replication_factor_; }

  friend DistributedGraph build_distributed(const EdgeList& graph,
                                            const PartitionAssignment& assignment);

 private:
  VertexId num_vertices_ = 0;
  MachineId num_machines_ = 0;
  EdgeId num_edges_ = 0;
  std::vector<std::vector<Edge>> local_edges_;
  std::vector<std::uint64_t> replica_mask_;
  std::vector<MachineId> master_;
  std::vector<VertexId> mirrors_per_machine_;
  std::vector<VertexId> masters_per_machine_;
  double replication_factor_ = 0.0;
};

DistributedGraph build_distributed(const EdgeList& graph,
                                   const PartitionAssignment& assignment);

/// Estimated resident memory of each machine's partition, in GB, at paper
/// scale: local edges (~32 B each in PowerGraph's adjacency + message
/// buffers) plus vertex replicas (~96 B of state, accumulator and mirror
/// bookkeeping).  Used for the feasibility check of Sec. IV's caveat ("if
/// the graph does not exceed the memory capacity...").
std::vector<double> estimated_memory_gb(const DistributedGraph& dg, double work_scale);

}  // namespace pglb
