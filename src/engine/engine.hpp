#pragma once
// Virtual-time BSP executor: the scheduling/energy core of the simulated
// PowerGraph substrate.
//
// Applications (src/apps/) do the *real* computation machine-by-machine over
// their local edge partitions, and report per-machine work (operation counts)
// and mirror-synchronisation bytes for each superstep.  The executor converts
// work to virtual seconds through the machine performance model, applies the
// BSP barrier (synchronous apps) or end-only barrier (asynchronous apps, i.e.
// Coloring), and integrates energy over the busy/idle schedule.

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/interference.hpp"
#include "engine/distributed_graph.hpp"
#include "engine/exec_report.hpp"
#include "machine/app_profile.hpp"
#include "machine/perf_model.hpp"

namespace pglb {

class ThreadPool;

class VirtualClusterExecutor {
 public:
  VirtualClusterExecutor(const Cluster& cluster, const AppProfile& app,
                         const WorkloadTraits& traits);

  /// Sustained work-units/second of machine m for this app/workload
  /// (nominal, without interference).
  double throughput(MachineId m) const { return throughputs_.at(m); }

  /// Inject a transient-slowdown schedule (multi-tenant interference).  Must
  /// be called before the first superstep.
  void set_interference(InterferenceSchedule schedule);

  /// Shard per-machine superstep accounting over `pool` (nullptr = the global
  /// pool).  Reports are bit-identical at any thread count: machines own
  /// their activity slots and cross-machine float sums stay in machine order.
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }

  /// Record one superstep: ops[m] work-units computed and comm_bytes[m]
  /// mirror traffic moved by machine m.
  void record_superstep(std::span<const double> ops, std::span<const double> comm_bytes);

  /// Seal the run and produce the report.
  ExecReport finish(std::string app_name, bool converged);

  MachineId num_machines() const noexcept { return cluster_->size(); }
  bool synchronous() const noexcept { return app_->synchronous; }

 private:
  const Cluster* cluster_;
  const AppProfile* app_;
  ThreadPool* pool_ = nullptr;
  double work_scale_ = 1.0;
  std::vector<double> throughputs_;
  InterferenceSchedule interference_;
  EnergyAccumulator energy_;
  std::vector<MachineActivity> activity_;
  std::vector<SuperstepTrace> trace_;
  double makespan_ = 0.0;
  int supersteps_ = 0;
  double total_ops_ = 0.0;
  bool finished_ = false;
};

/// Mirror-synchronisation bytes each machine moves in one value-exchange
/// round: every mirror uploads its gather partial and downloads the applied
/// value (2 messages of app.bytes_per_mirror).
std::vector<double> mirror_sync_bytes(const DistributedGraph& dg, const AppProfile& app);

}  // namespace pglb
