# Empty compiler generated dependencies file for cloud_cost_advisor.
# This may be replaced when dependencies are built.
