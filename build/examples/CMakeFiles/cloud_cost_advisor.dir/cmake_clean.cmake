file(REMOVE_RECURSE
  "CMakeFiles/cloud_cost_advisor.dir/cloud_cost_advisor.cpp.o"
  "CMakeFiles/cloud_cost_advisor.dir/cloud_cost_advisor.cpp.o.d"
  "cloud_cost_advisor"
  "cloud_cost_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_cost_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
