# Empty compiler generated dependencies file for heterogeneous_cluster_study.
# This may be replaced when dependencies are built.
