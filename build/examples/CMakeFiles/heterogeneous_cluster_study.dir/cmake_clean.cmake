file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_cluster_study.dir/heterogeneous_cluster_study.cpp.o"
  "CMakeFiles/heterogeneous_cluster_study.dir/heterogeneous_cluster_study.cpp.o.d"
  "heterogeneous_cluster_study"
  "heterogeneous_cluster_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_cluster_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
