file(REMOVE_RECURSE
  "CMakeFiles/paper_walkthrough.dir/paper_walkthrough.cpp.o"
  "CMakeFiles/paper_walkthrough.dir/paper_walkthrough.cpp.o.d"
  "paper_walkthrough"
  "paper_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
