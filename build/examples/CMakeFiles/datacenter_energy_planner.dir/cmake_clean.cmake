file(REMOVE_RECURSE
  "CMakeFiles/datacenter_energy_planner.dir/datacenter_energy_planner.cpp.o"
  "CMakeFiles/datacenter_energy_planner.dir/datacenter_energy_planner.cpp.o.d"
  "datacenter_energy_planner"
  "datacenter_energy_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_energy_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
