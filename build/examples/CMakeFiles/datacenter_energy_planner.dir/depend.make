# Empty dependencies file for datacenter_energy_planner.
# This may be replaced when dependencies are built.
