# Empty compiler generated dependencies file for straggler_postmortem.
# This may be replaced when dependencies are built.
