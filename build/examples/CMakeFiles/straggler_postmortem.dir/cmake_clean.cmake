file(REMOVE_RECURSE
  "CMakeFiles/straggler_postmortem.dir/straggler_postmortem.cpp.o"
  "CMakeFiles/straggler_postmortem.dir/straggler_postmortem.cpp.o.d"
  "straggler_postmortem"
  "straggler_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/straggler_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
