file(REMOVE_RECURSE
  "CMakeFiles/custom_app_sssp.dir/custom_app_sssp.cpp.o"
  "CMakeFiles/custom_app_sssp.dir/custom_app_sssp.cpp.o.d"
  "custom_app_sssp"
  "custom_app_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_app_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
