# Empty dependencies file for custom_app_sssp.
# This may be replaced when dependencies are built.
