# Empty compiler generated dependencies file for ablation_comm_aware.
# This may be replaced when dependencies are built.
