file(REMOVE_RECURSE
  "CMakeFiles/ablation_comm_aware.dir/ablation_comm_aware.cpp.o"
  "CMakeFiles/ablation_comm_aware.dir/ablation_comm_aware.cpp.o.d"
  "ablation_comm_aware"
  "ablation_comm_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_comm_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
