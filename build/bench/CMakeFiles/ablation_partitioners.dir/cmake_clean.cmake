file(REMOVE_RECURSE
  "CMakeFiles/ablation_partitioners.dir/ablation_partitioners.cpp.o"
  "CMakeFiles/ablation_partitioners.dir/ablation_partitioners.cpp.o.d"
  "ablation_partitioners"
  "ablation_partitioners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
