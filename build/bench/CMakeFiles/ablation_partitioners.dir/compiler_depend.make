# Empty compiler generated dependencies file for ablation_partitioners.
# This may be replaced when dependencies are built.
