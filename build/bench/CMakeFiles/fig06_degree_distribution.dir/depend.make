# Empty dependencies file for fig06_degree_distribution.
# This may be replaced when dependencies are built.
