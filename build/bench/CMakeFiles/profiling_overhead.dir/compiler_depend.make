# Empty compiler generated dependencies file for profiling_overhead.
# This may be replaced when dependencies are built.
