file(REMOVE_RECURSE
  "CMakeFiles/profiling_overhead.dir/profiling_overhead.cpp.o"
  "CMakeFiles/profiling_overhead.dir/profiling_overhead.cpp.o.d"
  "profiling_overhead"
  "profiling_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
