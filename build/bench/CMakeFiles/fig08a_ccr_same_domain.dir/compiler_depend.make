# Empty compiler generated dependencies file for fig08a_ccr_same_domain.
# This may be replaced when dependencies are built.
