file(REMOVE_RECURSE
  "CMakeFiles/fig08a_ccr_same_domain.dir/fig08a_ccr_same_domain.cpp.o"
  "CMakeFiles/fig08a_ccr_same_domain.dir/fig08a_ccr_same_domain.cpp.o.d"
  "fig08a_ccr_same_domain"
  "fig08a_ccr_same_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_ccr_same_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
