# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08a_ccr_same_domain.
