file(REMOVE_RECURSE
  "CMakeFiles/micro_generator.dir/micro_generator.cpp.o"
  "CMakeFiles/micro_generator.dir/micro_generator.cpp.o.d"
  "micro_generator"
  "micro_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
