# Empty dependencies file for fig09_case1_ec2.
# This may be replaced when dependencies are built.
