file(REMOVE_RECURSE
  "CMakeFiles/fig09_case1_ec2.dir/fig09_case1_ec2.cpp.o"
  "CMakeFiles/fig09_case1_ec2.dir/fig09_case1_ec2.cpp.o.d"
  "fig09_case1_ec2"
  "fig09_case1_ec2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_case1_ec2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
