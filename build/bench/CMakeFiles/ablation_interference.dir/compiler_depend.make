# Empty compiler generated dependencies file for ablation_interference.
# This may be replaced when dependencies are built.
