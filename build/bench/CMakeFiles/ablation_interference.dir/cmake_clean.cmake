file(REMOVE_RECURSE
  "CMakeFiles/ablation_interference.dir/ablation_interference.cpp.o"
  "CMakeFiles/ablation_interference.dir/ablation_interference.cpp.o.d"
  "ablation_interference"
  "ablation_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
