file(REMOVE_RECURSE
  "CMakeFiles/fig10b_case3_freq.dir/fig10b_case3_freq.cpp.o"
  "CMakeFiles/fig10b_case3_freq.dir/fig10b_case3_freq.cpp.o.d"
  "fig10b_case3_freq"
  "fig10b_case3_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_case3_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
