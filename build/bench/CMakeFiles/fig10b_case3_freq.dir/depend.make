# Empty dependencies file for fig10b_case3_freq.
# This may be replaced when dependencies are built.
