# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08b_ccr_cross_domain.
