file(REMOVE_RECURSE
  "CMakeFiles/fig08b_ccr_cross_domain.dir/fig08b_ccr_cross_domain.cpp.o"
  "CMakeFiles/fig08b_ccr_cross_domain.dir/fig08b_ccr_cross_domain.cpp.o.d"
  "fig08b_ccr_cross_domain"
  "fig08b_ccr_cross_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_ccr_cross_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
