# Empty dependencies file for fig08b_ccr_cross_domain.
# This may be replaced when dependencies are built.
