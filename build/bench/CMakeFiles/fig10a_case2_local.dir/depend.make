# Empty dependencies file for fig10a_case2_local.
# This may be replaced when dependencies are built.
