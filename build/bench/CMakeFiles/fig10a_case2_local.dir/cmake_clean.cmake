file(REMOVE_RECURSE
  "CMakeFiles/fig10a_case2_local.dir/fig10a_case2_local.cpp.o"
  "CMakeFiles/fig10a_case2_local.dir/fig10a_case2_local.cpp.o.d"
  "fig10a_case2_local"
  "fig10a_case2_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_case2_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
