file(REMOVE_RECURSE
  "CMakeFiles/fig11_cost_pareto.dir/fig11_cost_pareto.cpp.o"
  "CMakeFiles/fig11_cost_pareto.dir/fig11_cost_pareto.cpp.o.d"
  "fig11_cost_pareto"
  "fig11_cost_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cost_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
