# Empty compiler generated dependencies file for fig11_cost_pareto.
# This may be replaced when dependencies are built.
