file(REMOVE_RECURSE
  "CMakeFiles/ablation_proxy_sensitivity.dir/ablation_proxy_sensitivity.cpp.o"
  "CMakeFiles/ablation_proxy_sensitivity.dir/ablation_proxy_sensitivity.cpp.o.d"
  "ablation_proxy_sensitivity"
  "ablation_proxy_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_proxy_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
