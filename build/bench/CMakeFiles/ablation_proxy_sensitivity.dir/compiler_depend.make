# Empty compiler generated dependencies file for ablation_proxy_sensitivity.
# This may be replaced when dependencies are built.
