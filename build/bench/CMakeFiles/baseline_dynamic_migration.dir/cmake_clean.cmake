file(REMOVE_RECURSE
  "CMakeFiles/baseline_dynamic_migration.dir/baseline_dynamic_migration.cpp.o"
  "CMakeFiles/baseline_dynamic_migration.dir/baseline_dynamic_migration.cpp.o.d"
  "baseline_dynamic_migration"
  "baseline_dynamic_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_dynamic_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
