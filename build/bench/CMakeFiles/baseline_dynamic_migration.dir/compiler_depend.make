# Empty compiler generated dependencies file for baseline_dynamic_migration.
# This may be replaced when dependencies are built.
