# Empty compiler generated dependencies file for table1_machines.
# This may be replaced when dependencies are built.
