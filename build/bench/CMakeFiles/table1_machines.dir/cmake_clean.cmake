file(REMOVE_RECURSE
  "CMakeFiles/table1_machines.dir/table1_machines.cpp.o"
  "CMakeFiles/table1_machines.dir/table1_machines.cpp.o.d"
  "table1_machines"
  "table1_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
