file(REMOVE_RECURSE
  "CMakeFiles/table2_graphs.dir/table2_graphs.cpp.o"
  "CMakeFiles/table2_graphs.dir/table2_graphs.cpp.o.d"
  "table2_graphs"
  "table2_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
