# Empty dependencies file for table2_graphs.
# This may be replaced when dependencies are built.
