file(REMOVE_RECURSE
  "CMakeFiles/micro_alpha_solver.dir/micro_alpha_solver.cpp.o"
  "CMakeFiles/micro_alpha_solver.dir/micro_alpha_solver.cpp.o.d"
  "micro_alpha_solver"
  "micro_alpha_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_alpha_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
