# Empty compiler generated dependencies file for fig02_scaling_estimates.
# This may be replaced when dependencies are built.
