file(REMOVE_RECURSE
  "CMakeFiles/fig02_scaling_estimates.dir/fig02_scaling_estimates.cpp.o"
  "CMakeFiles/fig02_scaling_estimates.dir/fig02_scaling_estimates.cpp.o.d"
  "fig02_scaling_estimates"
  "fig02_scaling_estimates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_scaling_estimates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
