# Empty dependencies file for pglb_cli.
# This may be replaced when dependencies are built.
