file(REMOVE_RECURSE
  "CMakeFiles/pglb_cli.dir/pglb_cli.cpp.o"
  "CMakeFiles/pglb_cli.dir/pglb_cli.cpp.o.d"
  "pglb"
  "pglb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pglb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
