# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_machines "/root/repo/build/tools/pglb" "machines")
set_tests_properties(cli_machines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_alpha "/root/repo/build/tools/pglb" "alpha" "--vertices=1000000" "--edges=10000000")
set_tests_properties(cli_alpha PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate_stats_run "/usr/bin/cmake" "-DPGLB=/root/repo/build/tools/pglb" "-DWORKDIR=/root/repo/build/tools" "-P" "/root/repo/tools/smoke_test.cmake")
set_tests_properties(cli_generate_stats_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
