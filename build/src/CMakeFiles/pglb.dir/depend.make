# Empty dependencies file for pglb.
# This may be replaced when dependencies are built.
