src/CMakeFiles/pglb.dir/cluster/network_model.cpp.o: \
 /root/repo/src/cluster/network_model.cpp /usr/include/stdc-predef.h \
 /root/repo/src/cluster/network_model.hpp
