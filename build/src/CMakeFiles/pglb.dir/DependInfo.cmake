
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/coloring.cpp" "src/CMakeFiles/pglb.dir/apps/coloring.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/apps/coloring.cpp.o.d"
  "/root/repo/src/apps/connected_components.cpp" "src/CMakeFiles/pglb.dir/apps/connected_components.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/apps/connected_components.cpp.o.d"
  "/root/repo/src/apps/kcore.cpp" "src/CMakeFiles/pglb.dir/apps/kcore.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/apps/kcore.cpp.o.d"
  "/root/repo/src/apps/pagerank.cpp" "src/CMakeFiles/pglb.dir/apps/pagerank.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/apps/pagerank.cpp.o.d"
  "/root/repo/src/apps/reference.cpp" "src/CMakeFiles/pglb.dir/apps/reference.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/apps/reference.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/CMakeFiles/pglb.dir/apps/registry.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/apps/registry.cpp.o.d"
  "/root/repo/src/apps/sssp.cpp" "src/CMakeFiles/pglb.dir/apps/sssp.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/apps/sssp.cpp.o.d"
  "/root/repo/src/apps/triangle_count.cpp" "src/CMakeFiles/pglb.dir/apps/triangle_count.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/apps/triangle_count.cpp.o.d"
  "/root/repo/src/baselines/dynamic_migration.cpp" "src/CMakeFiles/pglb.dir/baselines/dynamic_migration.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/baselines/dynamic_migration.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/pglb.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/groups.cpp" "src/CMakeFiles/pglb.dir/cluster/groups.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/cluster/groups.cpp.o.d"
  "/root/repo/src/cluster/interference.cpp" "src/CMakeFiles/pglb.dir/cluster/interference.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/cluster/interference.cpp.o.d"
  "/root/repo/src/cluster/network_model.cpp" "src/CMakeFiles/pglb.dir/cluster/network_model.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/cluster/network_model.cpp.o.d"
  "/root/repo/src/core/ccr.cpp" "src/CMakeFiles/pglb.dir/core/ccr.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/core/ccr.cpp.o.d"
  "/root/repo/src/core/comm_aware.cpp" "src/CMakeFiles/pglb.dir/core/comm_aware.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/core/comm_aware.cpp.o.d"
  "/root/repo/src/core/estimators.cpp" "src/CMakeFiles/pglb.dir/core/estimators.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/core/estimators.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/CMakeFiles/pglb.dir/core/flow.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/core/flow.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/CMakeFiles/pglb.dir/core/online.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/core/online.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/CMakeFiles/pglb.dir/core/profiler.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/core/profiler.cpp.o.d"
  "/root/repo/src/core/proxy_suite.cpp" "src/CMakeFiles/pglb.dir/core/proxy_suite.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/core/proxy_suite.cpp.o.d"
  "/root/repo/src/core/time_database.cpp" "src/CMakeFiles/pglb.dir/core/time_database.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/core/time_database.cpp.o.d"
  "/root/repo/src/cost/cost_model.cpp" "src/CMakeFiles/pglb.dir/cost/cost_model.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/cost/cost_model.cpp.o.d"
  "/root/repo/src/cost/pareto.cpp" "src/CMakeFiles/pglb.dir/cost/pareto.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/cost/pareto.cpp.o.d"
  "/root/repo/src/engine/distributed_graph.cpp" "src/CMakeFiles/pglb.dir/engine/distributed_graph.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/engine/distributed_graph.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "src/CMakeFiles/pglb.dir/engine/engine.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/engine/engine.cpp.o.d"
  "/root/repo/src/engine/exec_report.cpp" "src/CMakeFiles/pglb.dir/engine/exec_report.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/engine/exec_report.cpp.o.d"
  "/root/repo/src/gen/alpha_solver.cpp" "src/CMakeFiles/pglb.dir/gen/alpha_solver.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/gen/alpha_solver.cpp.o.d"
  "/root/repo/src/gen/chung_lu.cpp" "src/CMakeFiles/pglb.dir/gen/chung_lu.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/gen/chung_lu.cpp.o.d"
  "/root/repo/src/gen/corpus.cpp" "src/CMakeFiles/pglb.dir/gen/corpus.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/gen/corpus.cpp.o.d"
  "/root/repo/src/gen/erdos_renyi.cpp" "src/CMakeFiles/pglb.dir/gen/erdos_renyi.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/gen/erdos_renyi.cpp.o.d"
  "/root/repo/src/gen/powerlaw.cpp" "src/CMakeFiles/pglb.dir/gen/powerlaw.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/gen/powerlaw.cpp.o.d"
  "/root/repo/src/gen/rmat.cpp" "src/CMakeFiles/pglb.dir/gen/rmat.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/gen/rmat.cpp.o.d"
  "/root/repo/src/gen/watts_strogatz.cpp" "src/CMakeFiles/pglb.dir/gen/watts_strogatz.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/gen/watts_strogatz.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/pglb.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/pglb.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/CMakeFiles/pglb.dir/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/graph/edge_list.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/pglb.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/relabel.cpp" "src/CMakeFiles/pglb.dir/graph/relabel.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/graph/relabel.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/CMakeFiles/pglb.dir/graph/stats.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/graph/stats.cpp.o.d"
  "/root/repo/src/machine/app_profile.cpp" "src/CMakeFiles/pglb.dir/machine/app_profile.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/machine/app_profile.cpp.o.d"
  "/root/repo/src/machine/catalog.cpp" "src/CMakeFiles/pglb.dir/machine/catalog.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/machine/catalog.cpp.o.d"
  "/root/repo/src/machine/energy_model.cpp" "src/CMakeFiles/pglb.dir/machine/energy_model.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/machine/energy_model.cpp.o.d"
  "/root/repo/src/machine/machine_spec.cpp" "src/CMakeFiles/pglb.dir/machine/machine_spec.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/machine/machine_spec.cpp.o.d"
  "/root/repo/src/machine/perf_model.cpp" "src/CMakeFiles/pglb.dir/machine/perf_model.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/machine/perf_model.cpp.o.d"
  "/root/repo/src/partition/chunking.cpp" "src/CMakeFiles/pglb.dir/partition/chunking.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/chunking.cpp.o.d"
  "/root/repo/src/partition/factory.cpp" "src/CMakeFiles/pglb.dir/partition/factory.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/factory.cpp.o.d"
  "/root/repo/src/partition/ginger.cpp" "src/CMakeFiles/pglb.dir/partition/ginger.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/ginger.cpp.o.d"
  "/root/repo/src/partition/grid.cpp" "src/CMakeFiles/pglb.dir/partition/grid.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/grid.cpp.o.d"
  "/root/repo/src/partition/hdrf.cpp" "src/CMakeFiles/pglb.dir/partition/hdrf.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/hdrf.cpp.o.d"
  "/root/repo/src/partition/hybrid.cpp" "src/CMakeFiles/pglb.dir/partition/hybrid.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/hybrid.cpp.o.d"
  "/root/repo/src/partition/metrics.cpp" "src/CMakeFiles/pglb.dir/partition/metrics.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/metrics.cpp.o.d"
  "/root/repo/src/partition/oblivious.cpp" "src/CMakeFiles/pglb.dir/partition/oblivious.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/oblivious.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/CMakeFiles/pglb.dir/partition/partitioner.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/partitioner.cpp.o.d"
  "/root/repo/src/partition/random_hash.cpp" "src/CMakeFiles/pglb.dir/partition/random_hash.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/random_hash.cpp.o.d"
  "/root/repo/src/partition/replication_model.cpp" "src/CMakeFiles/pglb.dir/partition/replication_model.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/replication_model.cpp.o.d"
  "/root/repo/src/partition/weights.cpp" "src/CMakeFiles/pglb.dir/partition/weights.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/partition/weights.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/pglb.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/hash.cpp" "src/CMakeFiles/pglb.dir/util/hash.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/util/hash.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/pglb.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/pglb.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/pglb.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/pglb.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/pglb.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
