file(REMOVE_RECURSE
  "libpglb.a"
)
