# Empty compiler generated dependencies file for test_chung_lu.
# This may be replaced when dependencies are built.
