file(REMOVE_RECURSE
  "CMakeFiles/test_chung_lu.dir/test_chung_lu.cpp.o"
  "CMakeFiles/test_chung_lu.dir/test_chung_lu.cpp.o.d"
  "test_chung_lu"
  "test_chung_lu.pdb"
  "test_chung_lu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chung_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
