# Empty compiler generated dependencies file for test_property_partitioners.
# This may be replaced when dependencies are built.
