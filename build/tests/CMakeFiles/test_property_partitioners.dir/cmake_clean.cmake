file(REMOVE_RECURSE
  "CMakeFiles/test_property_partitioners.dir/test_property_partitioners.cpp.o"
  "CMakeFiles/test_property_partitioners.dir/test_property_partitioners.cpp.o.d"
  "test_property_partitioners"
  "test_property_partitioners.pdb"
  "test_property_partitioners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
