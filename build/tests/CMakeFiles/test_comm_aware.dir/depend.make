# Empty dependencies file for test_comm_aware.
# This may be replaced when dependencies are built.
