file(REMOVE_RECURSE
  "CMakeFiles/test_comm_aware.dir/test_comm_aware.cpp.o"
  "CMakeFiles/test_comm_aware.dir/test_comm_aware.cpp.o.d"
  "test_comm_aware"
  "test_comm_aware.pdb"
  "test_comm_aware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
