# Empty compiler generated dependencies file for test_edge_list.
# This may be replaced when dependencies are built.
