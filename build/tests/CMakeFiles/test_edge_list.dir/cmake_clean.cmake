file(REMOVE_RECURSE
  "CMakeFiles/test_edge_list.dir/test_edge_list.cpp.o"
  "CMakeFiles/test_edge_list.dir/test_edge_list.cpp.o.d"
  "test_edge_list"
  "test_edge_list.pdb"
  "test_edge_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
