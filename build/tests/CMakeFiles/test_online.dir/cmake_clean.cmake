file(REMOVE_RECURSE
  "CMakeFiles/test_online.dir/test_online.cpp.o"
  "CMakeFiles/test_online.dir/test_online.cpp.o.d"
  "test_online"
  "test_online.pdb"
  "test_online[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
