file(REMOVE_RECURSE
  "CMakeFiles/test_alpha_solver.dir/test_alpha_solver.cpp.o"
  "CMakeFiles/test_alpha_solver.dir/test_alpha_solver.cpp.o.d"
  "test_alpha_solver"
  "test_alpha_solver.pdb"
  "test_alpha_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alpha_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
