# Empty compiler generated dependencies file for test_alpha_solver.
# This may be replaced when dependencies are built.
