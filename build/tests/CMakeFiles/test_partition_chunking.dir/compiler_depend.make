# Empty compiler generated dependencies file for test_partition_chunking.
# This may be replaced when dependencies are built.
