file(REMOVE_RECURSE
  "CMakeFiles/test_partition_chunking.dir/test_partition_chunking.cpp.o"
  "CMakeFiles/test_partition_chunking.dir/test_partition_chunking.cpp.o.d"
  "test_partition_chunking"
  "test_partition_chunking.pdb"
  "test_partition_chunking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
