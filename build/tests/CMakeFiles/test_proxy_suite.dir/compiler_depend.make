# Empty compiler generated dependencies file for test_proxy_suite.
# This may be replaced when dependencies are built.
