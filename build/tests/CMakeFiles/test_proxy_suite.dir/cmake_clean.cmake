file(REMOVE_RECURSE
  "CMakeFiles/test_proxy_suite.dir/test_proxy_suite.cpp.o"
  "CMakeFiles/test_proxy_suite.dir/test_proxy_suite.cpp.o.d"
  "test_proxy_suite"
  "test_proxy_suite.pdb"
  "test_proxy_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxy_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
