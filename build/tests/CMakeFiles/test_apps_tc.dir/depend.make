# Empty dependencies file for test_apps_tc.
# This may be replaced when dependencies are built.
