file(REMOVE_RECURSE
  "CMakeFiles/test_apps_tc.dir/test_apps_tc.cpp.o"
  "CMakeFiles/test_apps_tc.dir/test_apps_tc.cpp.o.d"
  "test_apps_tc"
  "test_apps_tc.pdb"
  "test_apps_tc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
