# Empty compiler generated dependencies file for test_distributed_graph.
# This may be replaced when dependencies are built.
