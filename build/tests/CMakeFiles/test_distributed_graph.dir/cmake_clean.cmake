file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_graph.dir/test_distributed_graph.cpp.o"
  "CMakeFiles/test_distributed_graph.dir/test_distributed_graph.cpp.o.d"
  "test_distributed_graph"
  "test_distributed_graph.pdb"
  "test_distributed_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
