# Empty dependencies file for test_partition_hdrf.
# This may be replaced when dependencies are built.
