file(REMOVE_RECURSE
  "CMakeFiles/test_partition_hdrf.dir/test_partition_hdrf.cpp.o"
  "CMakeFiles/test_partition_hdrf.dir/test_partition_hdrf.cpp.o.d"
  "test_partition_hdrf"
  "test_partition_hdrf.pdb"
  "test_partition_hdrf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_hdrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
