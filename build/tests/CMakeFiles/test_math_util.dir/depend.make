# Empty dependencies file for test_math_util.
# This may be replaced when dependencies are built.
