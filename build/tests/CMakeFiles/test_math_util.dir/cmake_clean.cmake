file(REMOVE_RECURSE
  "CMakeFiles/test_math_util.dir/test_math_util.cpp.o"
  "CMakeFiles/test_math_util.dir/test_math_util.cpp.o.d"
  "test_math_util"
  "test_math_util.pdb"
  "test_math_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
