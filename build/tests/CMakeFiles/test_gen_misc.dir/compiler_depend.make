# Empty compiler generated dependencies file for test_gen_misc.
# This may be replaced when dependencies are built.
