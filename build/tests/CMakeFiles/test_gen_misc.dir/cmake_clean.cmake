file(REMOVE_RECURSE
  "CMakeFiles/test_gen_misc.dir/test_gen_misc.cpp.o"
  "CMakeFiles/test_gen_misc.dir/test_gen_misc.cpp.o.d"
  "test_gen_misc"
  "test_gen_misc.pdb"
  "test_gen_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gen_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
