# Empty dependencies file for test_powerlaw_gen.
# This may be replaced when dependencies are built.
