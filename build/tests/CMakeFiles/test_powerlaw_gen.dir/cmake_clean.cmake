file(REMOVE_RECURSE
  "CMakeFiles/test_powerlaw_gen.dir/test_powerlaw_gen.cpp.o"
  "CMakeFiles/test_powerlaw_gen.dir/test_powerlaw_gen.cpp.o.d"
  "test_powerlaw_gen"
  "test_powerlaw_gen.pdb"
  "test_powerlaw_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_powerlaw_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
