# Empty compiler generated dependencies file for test_partition_random_hash.
# This may be replaced when dependencies are built.
