file(REMOVE_RECURSE
  "CMakeFiles/test_partition_random_hash.dir/test_partition_random_hash.cpp.o"
  "CMakeFiles/test_partition_random_hash.dir/test_partition_random_hash.cpp.o.d"
  "test_partition_random_hash"
  "test_partition_random_hash.pdb"
  "test_partition_random_hash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_random_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
