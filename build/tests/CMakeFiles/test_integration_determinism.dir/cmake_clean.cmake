file(REMOVE_RECURSE
  "CMakeFiles/test_integration_determinism.dir/test_integration_determinism.cpp.o"
  "CMakeFiles/test_integration_determinism.dir/test_integration_determinism.cpp.o.d"
  "test_integration_determinism"
  "test_integration_determinism.pdb"
  "test_integration_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
