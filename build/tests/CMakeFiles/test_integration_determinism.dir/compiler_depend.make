# Empty compiler generated dependencies file for test_integration_determinism.
# This may be replaced when dependencies are built.
