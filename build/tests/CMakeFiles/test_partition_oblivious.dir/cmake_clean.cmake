file(REMOVE_RECURSE
  "CMakeFiles/test_partition_oblivious.dir/test_partition_oblivious.cpp.o"
  "CMakeFiles/test_partition_oblivious.dir/test_partition_oblivious.cpp.o.d"
  "test_partition_oblivious"
  "test_partition_oblivious.pdb"
  "test_partition_oblivious[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
