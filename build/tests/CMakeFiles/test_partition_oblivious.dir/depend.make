# Empty dependencies file for test_partition_oblivious.
# This may be replaced when dependencies are built.
