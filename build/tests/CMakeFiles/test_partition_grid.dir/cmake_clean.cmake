file(REMOVE_RECURSE
  "CMakeFiles/test_partition_grid.dir/test_partition_grid.cpp.o"
  "CMakeFiles/test_partition_grid.dir/test_partition_grid.cpp.o.d"
  "test_partition_grid"
  "test_partition_grid.pdb"
  "test_partition_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
