# Empty compiler generated dependencies file for test_ccr.
# This may be replaced when dependencies are built.
