file(REMOVE_RECURSE
  "CMakeFiles/test_ccr.dir/test_ccr.cpp.o"
  "CMakeFiles/test_ccr.dir/test_ccr.cpp.o.d"
  "test_ccr"
  "test_ccr.pdb"
  "test_ccr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
