# Empty dependencies file for test_apps_pagerank.
# This may be replaced when dependencies are built.
