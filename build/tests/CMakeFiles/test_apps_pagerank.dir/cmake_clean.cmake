file(REMOVE_RECURSE
  "CMakeFiles/test_apps_pagerank.dir/test_apps_pagerank.cpp.o"
  "CMakeFiles/test_apps_pagerank.dir/test_apps_pagerank.cpp.o.d"
  "test_apps_pagerank"
  "test_apps_pagerank.pdb"
  "test_apps_pagerank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
