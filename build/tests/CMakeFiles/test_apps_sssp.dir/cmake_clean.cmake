file(REMOVE_RECURSE
  "CMakeFiles/test_apps_sssp.dir/test_apps_sssp.cpp.o"
  "CMakeFiles/test_apps_sssp.dir/test_apps_sssp.cpp.o.d"
  "test_apps_sssp"
  "test_apps_sssp.pdb"
  "test_apps_sssp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
