# Empty compiler generated dependencies file for test_apps_sssp.
# This may be replaced when dependencies are built.
