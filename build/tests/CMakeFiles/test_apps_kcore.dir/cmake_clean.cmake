file(REMOVE_RECURSE
  "CMakeFiles/test_apps_kcore.dir/test_apps_kcore.cpp.o"
  "CMakeFiles/test_apps_kcore.dir/test_apps_kcore.cpp.o.d"
  "test_apps_kcore"
  "test_apps_kcore.pdb"
  "test_apps_kcore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_kcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
