# Empty compiler generated dependencies file for test_apps_kcore.
# This may be replaced when dependencies are built.
