# Empty compiler generated dependencies file for test_threshold_sweeps.
# This may be replaced when dependencies are built.
