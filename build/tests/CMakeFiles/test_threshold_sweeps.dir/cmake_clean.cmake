file(REMOVE_RECURSE
  "CMakeFiles/test_threshold_sweeps.dir/test_threshold_sweeps.cpp.o"
  "CMakeFiles/test_threshold_sweeps.dir/test_threshold_sweeps.cpp.o.d"
  "test_threshold_sweeps"
  "test_threshold_sweeps.pdb"
  "test_threshold_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threshold_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
