# Empty dependencies file for test_dynamic_migration.
# This may be replaced when dependencies are built.
