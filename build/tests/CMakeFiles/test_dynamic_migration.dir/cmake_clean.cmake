file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_migration.dir/test_dynamic_migration.cpp.o"
  "CMakeFiles/test_dynamic_migration.dir/test_dynamic_migration.cpp.o.d"
  "test_dynamic_migration"
  "test_dynamic_migration.pdb"
  "test_dynamic_migration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
