# Empty compiler generated dependencies file for test_relabel.
# This may be replaced when dependencies are built.
