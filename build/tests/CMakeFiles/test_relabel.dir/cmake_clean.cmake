file(REMOVE_RECURSE
  "CMakeFiles/test_relabel.dir/test_relabel.cpp.o"
  "CMakeFiles/test_relabel.dir/test_relabel.cpp.o.d"
  "test_relabel"
  "test_relabel.pdb"
  "test_relabel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relabel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
