file(REMOVE_RECURSE
  "CMakeFiles/test_partition_ginger.dir/test_partition_ginger.cpp.o"
  "CMakeFiles/test_partition_ginger.dir/test_partition_ginger.cpp.o.d"
  "test_partition_ginger"
  "test_partition_ginger.pdb"
  "test_partition_ginger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_ginger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
