# Empty dependencies file for test_partition_ginger.
# This may be replaced when dependencies are built.
