# Empty compiler generated dependencies file for test_apps_cc.
# This may be replaced when dependencies are built.
