file(REMOVE_RECURSE
  "CMakeFiles/test_apps_cc.dir/test_apps_cc.cpp.o"
  "CMakeFiles/test_apps_cc.dir/test_apps_cc.cpp.o.d"
  "test_apps_cc"
  "test_apps_cc.pdb"
  "test_apps_cc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
