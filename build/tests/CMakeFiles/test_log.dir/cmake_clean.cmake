file(REMOVE_RECURSE
  "CMakeFiles/test_log.dir/test_log.cpp.o"
  "CMakeFiles/test_log.dir/test_log.cpp.o.d"
  "test_log"
  "test_log.pdb"
  "test_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
