file(REMOVE_RECURSE
  "CMakeFiles/test_failure_modes.dir/test_failure_modes.cpp.o"
  "CMakeFiles/test_failure_modes.dir/test_failure_modes.cpp.o.d"
  "test_failure_modes"
  "test_failure_modes.pdb"
  "test_failure_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
