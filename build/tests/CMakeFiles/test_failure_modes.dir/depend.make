# Empty dependencies file for test_failure_modes.
# This may be replaced when dependencies are built.
