# Empty dependencies file for test_app_seed_sweeps.
# This may be replaced when dependencies are built.
