file(REMOVE_RECURSE
  "CMakeFiles/test_app_seed_sweeps.dir/test_app_seed_sweeps.cpp.o"
  "CMakeFiles/test_app_seed_sweeps.dir/test_app_seed_sweeps.cpp.o.d"
  "test_app_seed_sweeps"
  "test_app_seed_sweeps.pdb"
  "test_app_seed_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_seed_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
