file(REMOVE_RECURSE
  "CMakeFiles/test_estimators.dir/test_estimators.cpp.o"
  "CMakeFiles/test_estimators.dir/test_estimators.cpp.o.d"
  "test_estimators"
  "test_estimators.pdb"
  "test_estimators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
