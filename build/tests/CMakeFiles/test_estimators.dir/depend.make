# Empty dependencies file for test_estimators.
# This may be replaced when dependencies are built.
