# Empty compiler generated dependencies file for test_memory_model.
# This may be replaced when dependencies are built.
