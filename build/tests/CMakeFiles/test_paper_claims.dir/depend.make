# Empty dependencies file for test_paper_claims.
# This may be replaced when dependencies are built.
