file(REMOVE_RECURSE
  "CMakeFiles/test_apps_coloring.dir/test_apps_coloring.cpp.o"
  "CMakeFiles/test_apps_coloring.dir/test_apps_coloring.cpp.o.d"
  "test_apps_coloring"
  "test_apps_coloring.pdb"
  "test_apps_coloring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
