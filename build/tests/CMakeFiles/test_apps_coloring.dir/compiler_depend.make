# Empty compiler generated dependencies file for test_apps_coloring.
# This may be replaced when dependencies are built.
