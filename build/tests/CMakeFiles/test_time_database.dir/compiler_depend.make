# Empty compiler generated dependencies file for test_time_database.
# This may be replaced when dependencies are built.
