file(REMOVE_RECURSE
  "CMakeFiles/test_time_database.dir/test_time_database.cpp.o"
  "CMakeFiles/test_time_database.dir/test_time_database.cpp.o.d"
  "test_time_database"
  "test_time_database.pdb"
  "test_time_database[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
