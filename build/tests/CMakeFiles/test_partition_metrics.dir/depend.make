# Empty dependencies file for test_partition_metrics.
# This may be replaced when dependencies are built.
