file(REMOVE_RECURSE
  "CMakeFiles/test_partition_metrics.dir/test_partition_metrics.cpp.o"
  "CMakeFiles/test_partition_metrics.dir/test_partition_metrics.cpp.o.d"
  "test_partition_metrics"
  "test_partition_metrics.pdb"
  "test_partition_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
