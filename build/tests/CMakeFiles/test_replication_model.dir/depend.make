# Empty dependencies file for test_replication_model.
# This may be replaced when dependencies are built.
