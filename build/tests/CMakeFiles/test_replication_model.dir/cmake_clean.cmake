file(REMOVE_RECURSE
  "CMakeFiles/test_replication_model.dir/test_replication_model.cpp.o"
  "CMakeFiles/test_replication_model.dir/test_replication_model.cpp.o.d"
  "test_replication_model"
  "test_replication_model.pdb"
  "test_replication_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replication_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
