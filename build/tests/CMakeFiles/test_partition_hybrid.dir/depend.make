# Empty dependencies file for test_partition_hybrid.
# This may be replaced when dependencies are built.
