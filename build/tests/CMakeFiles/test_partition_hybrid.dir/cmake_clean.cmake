file(REMOVE_RECURSE
  "CMakeFiles/test_partition_hybrid.dir/test_partition_hybrid.cpp.o"
  "CMakeFiles/test_partition_hybrid.dir/test_partition_hybrid.cpp.o.d"
  "test_partition_hybrid"
  "test_partition_hybrid.pdb"
  "test_partition_hybrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
