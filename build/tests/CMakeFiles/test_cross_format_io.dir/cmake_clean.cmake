file(REMOVE_RECURSE
  "CMakeFiles/test_cross_format_io.dir/test_cross_format_io.cpp.o"
  "CMakeFiles/test_cross_format_io.dir/test_cross_format_io.cpp.o.d"
  "test_cross_format_io"
  "test_cross_format_io.pdb"
  "test_cross_format_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_format_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
