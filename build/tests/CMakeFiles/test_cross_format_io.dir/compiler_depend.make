# Empty compiler generated dependencies file for test_cross_format_io.
# This may be replaced when dependencies are built.
