# Empty compiler generated dependencies file for test_csr_builder.
# This may be replaced when dependencies are built.
