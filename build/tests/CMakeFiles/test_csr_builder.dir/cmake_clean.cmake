file(REMOVE_RECURSE
  "CMakeFiles/test_csr_builder.dir/test_csr_builder.cpp.o"
  "CMakeFiles/test_csr_builder.dir/test_csr_builder.cpp.o.d"
  "test_csr_builder"
  "test_csr_builder.pdb"
  "test_csr_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csr_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
